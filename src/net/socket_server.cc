#include "socket_server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "repl/repl_protocol.hh"
#include "repl/replication_hub.hh"
#include "svc/failpoints.hh"
#include "svc/wire.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::net {
namespace {

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
wallClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    REF_REQUIRE(flags >= 0 &&
                    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "cannot set O_NONBLOCK: " << std::strerror(errno));
}

} // namespace

/**
 * Per-shard handles into the process-wide registry; get-or-create,
 * so several single-shard servers in one process share the unlabeled
 * series (the pre-shard behaviour), while a multi-shard server gives
 * each shard its own {shard="i"}-labelled series.
 */
struct SocketServer::Metrics
{
    obs::Counter &accepted;
    obs::Counter &dropped;
    obs::Counter &idleTimeouts;
    obs::Counter &writeTimeouts;
    obs::Counter &bytesIn;
    obs::Counter &bytesOut;
    obs::Counter &lines;
    obs::Counter &overlongLines;
    obs::Counter &frames;
    obs::Counter &badFrames;
    obs::Counter &binaryConnections;
    obs::Gauge &active;

    static std::string series(const char *base,
                              const std::string &label)
    {
        return base + label;
    }

    Metrics(std::size_t shardIndex, std::size_t shardCount)
        : Metrics(shardCount > 1
                      ? "{shard=\"" + std::to_string(shardIndex) +
                            "\"}"
                      : std::string())
    {}

    explicit Metrics(const std::string &label)
        : accepted(obs::MetricsRegistry::global().counter(
              series("ref_net_accepted_total", label),
              "Client connections accepted by the socket server")),
          dropped(obs::MetricsRegistry::global().counter(
              series("ref_net_dropped_total", label),
              "Client connections dropped (timeout, overflow, IO "
              "error, or server full)")),
          idleTimeouts(obs::MetricsRegistry::global().counter(
              series("ref_net_idle_timeouts_total", label),
              "Connections dropped by the idle timeout")),
          writeTimeouts(obs::MetricsRegistry::global().counter(
              series("ref_net_write_timeouts_total", label),
              "Connections dropped by the write timeout (slow "
              "readers)")),
          bytesIn(obs::MetricsRegistry::global().counter(
              series("ref_net_bytes_in_total", label),
              "Bytes read from socket clients")),
          bytesOut(obs::MetricsRegistry::global().counter(
              series("ref_net_bytes_out_total", label),
              "Bytes written to socket clients")),
          lines(obs::MetricsRegistry::global().counter(
              series("ref_net_lines_total", label),
              "Complete protocol lines framed off sockets")),
          overlongLines(obs::MetricsRegistry::global().counter(
              series("ref_net_overlong_lines_total", label),
              "Lines rejected for exceeding the byte bound")),
          frames(obs::MetricsRegistry::global().counter(
              series("ref_net_frames_total", label),
              "Binary request frames served")),
          badFrames(obs::MetricsRegistry::global().counter(
              series("ref_net_bad_frames_total", label),
              "Binary frames rejected (oversized, bad CRC, or torn "
              "at end of stream)")),
          binaryConnections(obs::MetricsRegistry::global().counter(
              series("ref_net_binary_connections_total", label),
              "Connections that negotiated the binary protocol")),
          active(obs::MetricsRegistry::global().gauge(
              series("ref_net_active_connections", label),
              "Currently connected socket clients"))
    {}
};

namespace {

/**
 * Failpoint shim for the socket syscall sites ("net.accept",
 * "net.read", "net.write"). Error actions surface as the injected
 * errno — the caller handles it exactly like a real failed syscall
 * (connection drop, accept retry). ShortWrite halves the byte count
 * the caller may move this pass, exercising the partial-IO paths
 * without an error. Crash actions behave as in the journal shim.
 */
struct NetInject
{
    bool fail = false;
    int errnoValue = 0;
    bool shortIo = false;
};

NetInject
injectNetIo(const char *site)
{
    const auto hit = svc::Failpoints::instance().check(site);
    if (!hit)
        return {};
    if (hit->action == svc::FailAction::Crash) {
        if (hit->exitProcess)
            std::_Exit(svc::kCrashExitCode);
        throw svc::CrashInjected(site);
    }
    if (hit->action == svc::FailAction::ShortWrite)
        return {false, 0, true};
    return {true, hit->errnoValue, false};
}

} // namespace

/** One client connection: fd + framing buffers + protocol session. */
struct SocketServer::Connection
{
    /** How this connection's inbound bytes are framed. Every
     *  connection starts in Detect until its first bytes either
     *  match the binary hello magic or rule it out. */
    enum class Mode
    {
        Detect,
        Text,
        Binary,
    };

    int fd = -1;
    std::unique_ptr<svc::CommandSession> session;
    Mode mode = Mode::Detect;
    std::string inbuf;       //!< Bytes read, not yet framed.
    std::string outbuf;      //!< Reply bytes not yet written.
    std::size_t outOffset = 0;  //!< Flushed prefix of outbuf.
    bool discardingOverlong = false;
    /** Binary resync: bytes of an already-rejected frame still to
     *  swallow (the declared length of an oversized or CRC-corrupt
     *  frame), consumed as they arrive — bounded memory, one ERR. */
    std::uint64_t discardBytes = 0;
    bool dead = false;
    std::int64_t lastInboundMs = 0;   //!< Last byte read.
    std::int64_t lastProgressMs = 0;  //!< Last outbuf progress.
    /** Replica subscription (a binary connection whose SYNC was
     *  accepted): pumpReplicas ships records after replCursor and
     *  inbound frames are Acks, not commands. */
    bool replica = false;
    std::uint64_t replCursor = 0;
    /** Stream identity the cursor belongs to; when the hub mints a
     *  new stream (chained follower adopted a snapshot) the cursor
     *  is meaningless and the replica gets a fresh snapshot. */
    std::uint64_t replStreamId = 0;
    std::int64_t lastHeartbeatMs = 0;

    std::size_t pending() const { return outbuf.size() - outOffset; }
};

SocketServer::SocketServer(svc::AllocationService &service,
                           ServerOptions options)
    : service_(service), options_(std::move(options)),
      metrics_(std::make_unique<Metrics>(options_.shardIndex,
                                         options_.shardCount))
{
    // One socket scrape covers service and transport: METRICS prom
    // from a connection also renders the ref_net_* global series.
    options_.session.includeGlobalMetrics = true;
}

SocketServer::~SocketServer()
{
    for (auto &conn : connections_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (tcpListenFd_ >= 0)
        ::close(tcpListenFd_);
    if (unixListenFd_ >= 0)
        ::close(unixListenFd_);
    for (const int fd : wakeFds_)
        if (fd >= 0)
            ::close(fd);
    if (!boundUnixPath_.empty())
        ::unlink(boundUnixPath_.c_str());
}

void
SocketServer::start()
{
    REF_REQUIRE(!options_.listenAddress.empty() ||
                    !options_.unixPath.empty(),
                "socket server needs --listen and/or --unix");
    REF_REQUIRE(options_.maxLineBytes >= 16,
                "line bound must be at least 16 bytes");

    if (!options_.listenAddress.empty()) {
        const std::string &spec = options_.listenAddress;
        const std::size_t colon = spec.rfind(':');
        REF_REQUIRE(colon != std::string::npos && colon > 0,
                    "--listen wants addr:port, got '" << spec << "'");
        const std::string host = spec.substr(0, colon);
        const std::string portText = spec.substr(colon + 1);
        int port = 0;
        try {
            std::size_t consumed = 0;
            port = std::stoi(portText, &consumed);
            REF_REQUIRE(consumed == portText.size() && port >= 0 &&
                            port <= 65535,
                        "bad port '" << portText << "'");
        } catch (const std::logic_error &) {
            REF_FATAL("bad port '" << portText << "'");
        }

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        REF_REQUIRE(::inet_pton(AF_INET, host.c_str(),
                                &addr.sin_addr) == 1,
                    "--listen wants a numeric IPv4 address, got '"
                        << host << "'");

        tcpListenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        REF_REQUIRE(tcpListenFd_ >= 0, "socket: "
                                           << std::strerror(errno));
        const int one = 1;
        ::setsockopt(tcpListenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (options_.reusePort)
            REF_REQUIRE(::setsockopt(tcpListenFd_, SOL_SOCKET,
                                     SO_REUSEPORT, &one,
                                     sizeof(one)) == 0,
                        "SO_REUSEPORT: " << std::strerror(errno));
        REF_REQUIRE(::bind(tcpListenFd_,
                           reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) == 0,
                    "bind " << spec << ": " << std::strerror(errno));
        REF_REQUIRE(::listen(tcpListenFd_, SOMAXCONN) == 0,
                    "listen: " << std::strerror(errno));
        setNonBlocking(tcpListenFd_);

        sockaddr_in bound{};
        socklen_t length = sizeof(bound);
        REF_REQUIRE(::getsockname(
                        tcpListenFd_,
                        reinterpret_cast<sockaddr *>(&bound),
                        &length) == 0,
                    "getsockname: " << std::strerror(errno));
        tcpPort_ = ntohs(bound.sin_port);
    }

    if (!options_.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        REF_REQUIRE(options_.unixPath.size() <
                        sizeof(addr.sun_path),
                    "--unix path too long: " << options_.unixPath);
        std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);

        unixListenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        REF_REQUIRE(unixListenFd_ >= 0,
                    "socket: " << std::strerror(errno));
        ::unlink(options_.unixPath.c_str());
        REF_REQUIRE(::bind(unixListenFd_,
                           reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) == 0,
                    "bind " << options_.unixPath << ": "
                            << std::strerror(errno));
        REF_REQUIRE(::listen(unixListenFd_, SOMAXCONN) == 0,
                    "listen: " << std::strerror(errno));
        setNonBlocking(unixListenFd_);
        boundUnixPath_ = options_.unixPath;
    }

    // Self-pipe: requestStop() from another thread writes one byte
    // so an idle poll wakes immediately instead of at its timeout.
    if (wakeFds_[0] < 0) {
        REF_REQUIRE(::pipe(wakeFds_) == 0,
                    "pipe: " << std::strerror(errno));
        setNonBlocking(wakeFds_[0]);
        setNonBlocking(wakeFds_[1]);
    }

    // Records appended off-loop (the stdio transport, another
    // shard) must reach replicas promptly: the hub pokes the
    // self-pipe so a poll-blocked loop pumps without waiting for
    // its timeout. The hub outlives the server (ServerOptions
    // contract), but the write fd is process-long-lived anyway.
    if (options_.replicationHub != nullptr) {
        const int wakeFd = wakeFds_[1];
        options_.replicationHub->addWakeCallback([wakeFd] {
            const char byte = 1;
            const ssize_t ignored [[maybe_unused]] =
                ::write(wakeFd, &byte, 1);
        });
    }
}

void
SocketServer::requestStop()
{
    stopRequested_.store(true, std::memory_order_relaxed);
    if (wakeFds_[1] >= 0) {
        const char byte = 1;
        // A full pipe means a wakeup is already pending.
        const ssize_t ignored [[maybe_unused]] =
            ::write(wakeFds_[1], &byte, 1);
    }
}

bool
SocketServer::stopFlagSet() const
{
    if (stopRequested_.load(std::memory_order_relaxed))
        return true;
    const volatile std::sig_atomic_t *flag =
        options_.session.stopFlag;
    return flag != nullptr && *flag != 0;
}

void
SocketServer::acceptPending(int listenFd)
{
    for (;;) {
        obs::Span span("net.accept", "net");
        const NetInject inject = injectNetIo("net.accept");
        int fd = -1;
        if (inject.fail) {
            errno = inject.errnoValue;
        } else {
            fd = ::accept(listenFd, nullptr, nullptr);
        }
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            // EMFILE/ECONNABORTED/injected EIO: count and keep
            // serving; the listener stays armed.
            ++stats_.ioErrors;
            return;
        }
        setNonBlocking(fd);
        if (listenFd == tcpListenFd_) {
            // Replies are small and latency-bound; Nagle coalescing
            // against delayed ACKs costs tens of milliseconds per
            // window. Best effort: Unix sockets ignore it anyway.
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }

        if (connections_.size() >= options_.maxClients) {
            static constexpr char kFull[] = "ERR server full\n";
            // Best effort: a blocked turnaway write is not worth
            // waiting on.
            const ssize_t ignored [[maybe_unused]] = ::send(
                fd, kFull, sizeof(kFull) - 1, MSG_NOSIGNAL);
            ::close(fd);
            ++stats_.acceptRejects;
            ++stats_.dropped;
            metrics_->dropped.add();
            continue;
        }

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->session = std::make_unique<svc::CommandSession>(
            service_, options_.session);
        conn->lastInboundMs = nowMs();
        conn->lastProgressMs = conn->lastInboundMs;
        connections_.push_back(std::move(conn));
        ++stats_.accepted;
        metrics_->accepted.add();
        metrics_->active.set(
            static_cast<double>(connections_.size()));
    }
}

/** The one ERR a line beyond the byte bound draws; counted as a
 *  rejected command so STATS agrees with the transcript. */
void
SocketServer::rejectOverlong(Connection &conn)
{
    ++stats_.overlongLines;
    metrics_->overlongLines.add();
    service_.noteRejected();
    ++conn.session->result().commands;
    ++conn.session->result().errors;
    std::ostringstream reply;
    reply << "ERR line exceeds " << options_.maxLineBytes
          << " byte bound\n";
    conn.outbuf += reply.str();
}

void
SocketServer::dispatchLine(Connection &conn, const std::string &line)
{
    obs::Span span("net.dispatch", "net");
    ++stats_.lines;
    metrics_->lines.add();
    std::ostringstream reply;
    const auto status = conn.session->executeLine(line, reply);
    barrierPending_ = true;
    conn.outbuf += reply.str();
    if (status == svc::CommandSession::LineStatus::Shutdown) {
        stats_.shutdown = true;
        draining_ = true;
    }
}

void
SocketServer::handleReadable(Connection &conn)
{
    obs::Span span("net.read", "net");
    char chunk[4096];
    // Cap one connection's reads per loop pass so a firehose client
    // cannot monopolize the single-threaded loop.
    std::size_t budget = 64 * sizeof(chunk);
    while (budget > 0 && !conn.dead && !draining_) {
        const NetInject inject = injectNetIo("net.read");
        ssize_t got = -1;
        if (inject.fail) {
            errno = inject.errnoValue;
        } else {
            const std::size_t want =
                inject.shortIo ? 1 : std::min(budget, sizeof(chunk));
            got = ::read(conn.fd, chunk, want);
        }
        if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            ++stats_.ioErrors;
            dropConnection(conn, "read error");
            return;
        }
        if (got == 0) {  // Peer EOF: end of that session.
            if (conn.mode == Connection::Mode::Binary &&
                !conn.inbuf.empty() && conn.discardBytes == 0) {
                // The stream ends mid-frame — the transport analogue
                // of a journal's torn tail: one ERR, best-effort
                // flush, then the close.
                rejectBadFrame(conn, "torn frame at end of stream");
            }
            if (conn.pending() > 0)
                flushWrites(conn);
            closeConnection(conn);
            return;
        }
        budget -= static_cast<std::size_t>(got);
        conn.lastInboundMs = nowMs();
        stats_.bytesIn += static_cast<std::uint64_t>(got);
        metrics_->bytesIn.add(
            static_cast<std::uint64_t>(got));
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));

        processInput(conn);
        if (conn.dead)
            return;
        // Replicas are exempt: a queued snapshot legitimately
        // exceeds the interactive backlog bound (the write timeout
        // still catches a reader that stops draining it).
        if (!conn.replica &&
            conn.pending() > options_.maxPendingBytes) {
            ++stats_.overflowDrops;
            dropConnection(conn, "reply backlog overflow");
            return;
        }
    }
}

void
SocketServer::processInput(Connection &conn)
{
    if (conn.mode == Connection::Mode::Detect)
        detectMode(conn);
    if (conn.mode == Connection::Mode::Text)
        processText(conn);
    else if (conn.mode == Connection::Mode::Binary)
        processBinary(conn);
}

void
SocketServer::detectMode(Connection &conn)
{
    if (!options_.enableBinary) {
        conn.mode = Connection::Mode::Text;
        return;
    }
    const std::string_view magic = svc::wire::helloMagic();
    const std::size_t have =
        std::min(conn.inbuf.size(), magic.size());
    if (std::string_view(conn.inbuf).substr(0, have) !=
        magic.substr(0, have)) {
        conn.mode = Connection::Mode::Text;
        return;
    }
    if (have < magic.size())
        return;  // Prefix of the magic so far: wait for more bytes.
    conn.inbuf.erase(0, magic.size());
    conn.mode = Connection::Mode::Binary;
    ++stats_.binaryConnections;
    metrics_->binaryConnections.add();
    conn.outbuf += frameRecord(svc::wire::encodeHelloAck());
}

void
SocketServer::processText(Connection &conn)
{
    // Frame complete lines; enforce the byte bound both on
    // complete lines and on an incomplete remainder.
    std::size_t begin = 0;
    for (;;) {
        const std::size_t newline = conn.inbuf.find('\n', begin);
        if (newline == std::string::npos)
            break;
        if (conn.discardingOverlong) {
            // Tail of an overlong line: already answered with
            // its one ERR, swallow through the newline.
            conn.discardingOverlong = false;
        } else if (newline - begin > options_.maxLineBytes) {
            rejectOverlong(conn);
        } else {
            const std::string line =
                conn.inbuf.substr(begin, newline - begin);
            dispatchLine(conn, line);
        }
        begin = newline + 1;
        if (draining_)
            break;
    }
    conn.inbuf.erase(0, begin);
    if (conn.discardingOverlong) {
        conn.inbuf.clear();
    } else if (conn.inbuf.size() > options_.maxLineBytes) {
        // One ERR per bad line, never a disconnect: reject now,
        // swallow until the newline arrives.
        rejectOverlong(conn);
        conn.inbuf.clear();
        conn.discardingOverlong = true;
    }
}

void
SocketServer::processBinary(Connection &conn)
{
    for (;;) {
        if (conn.discardBytes > 0) {
            // Swallowing an already-rejected frame's payload as it
            // arrives: bounded memory however absurd the declared
            // length was.
            const std::uint64_t eat = std::min<std::uint64_t>(
                conn.discardBytes, conn.inbuf.size());
            conn.inbuf.erase(0, static_cast<std::size_t>(eat));
            conn.discardBytes -= eat;
            if (conn.discardBytes > 0)
                return;
        }
        if (conn.inbuf.size() < 8 || draining_)
            return;  // Torn: wait for at least a whole header.
        ByteReader header(std::string_view(conn.inbuf.data(), 8));
        const std::uint32_t length = header.u32();
        const std::uint32_t expected = header.u32();
        if (length > options_.maxFrameBytes) {
            conn.inbuf.erase(0, 8);
            conn.discardBytes = length;
            rejectBadFrame(conn, "frame exceeds byte bound");
            continue;
        }
        if (conn.inbuf.size() <
            8 + static_cast<std::size_t>(length))
            return;  // Torn: bounded above by maxFrameBytes.
        const std::string_view payload(conn.inbuf.data() + 8,
                                       length);
        if (crc32(payload) != expected) {
            conn.inbuf.erase(
                0, 8 + static_cast<std::size_t>(length));
            rejectBadFrame(conn, "frame CRC mismatch");
            continue;
        }
        dispatchFrame(conn, payload);
        if (conn.dead)
            return;  // A replica dropped mid-buffer stays dropped.
        conn.inbuf.erase(0, 8 + static_cast<std::size_t>(length));
        if (draining_)
            return;
    }
}

void
SocketServer::dispatchFrame(Connection &conn,
                            std::string_view payload)
{
    obs::Span span("net.dispatch", "net");
    if (conn.replica) {
        handleReplicaFrame(conn, payload);
        return;
    }
    svc::Command command;
    try {
        command = svc::wire::decodeCommand(payload);
    } catch (const FatalError &error) {
        // CRC-valid but undecodable (unknown opcode, truncated
        // fields, trailing bytes): one framed ERR, the stream
        // stays up — same contract as a corrupt frame.
        rejectBadFrame(conn,
                       std::string("bad frame: ") + error.what());
        return;
    }
    ++stats_.frames;
    metrics_->frames.add();
    if (command.op == svc::Command::Op::Sync) {
        // The transport intercepts SYNC: subscription is a channel
        // mode change, not a service command.
        handleSync(conn, command);
        return;
    }
    svc::wire::ReplyStatus status = svc::wire::ReplyStatus::Ok;
    std::ostringstream reply;
    const auto line = conn.session->executeCommand(command, reply);
    barrierPending_ = true;
    if (line == svc::CommandSession::LineStatus::Shutdown) {
        status = svc::wire::ReplyStatus::Shutdown;
        stats_.shutdown = true;
        draining_ = true;
    } else if (line == svc::CommandSession::LineStatus::Rejected) {
        status = svc::wire::ReplyStatus::Err;
    }
    conn.outbuf +=
        frameRecord(svc::wire::encodeReply(status, reply.str()));
}

void
SocketServer::handleSync(Connection &conn,
                         const svc::Command &command)
{
    repl::ReplicationHub *hub = options_.replicationHub;
    if (hub == nullptr) {
        ++conn.session->result().commands;
        ++conn.session->result().errors;
        service_.noteRejected();
        conn.outbuf += frameRecord(svc::wire::encodeReply(
            svc::wire::ReplyStatus::Err,
            "ERR replication not enabled\n"));
        return;
    }

    // Resume from the offered cursor when it names this stream and
    // the tail is still on the ring; anything else gets a full
    // snapshot (primary restarted, or the follower is too far
    // behind — same answer either way).
    std::vector<repl::ReplicationHub::Entry> probe;
    const bool tailResume =
        command.syncStreamId == hub->streamId() &&
        hub->fetchAfter(command.syncSeq, 0, probe);

    std::ostringstream reply;
    reply << "OK sync stream=" << hub->streamId()
          << " from=" << (tailResume ? command.syncSeq : 0)
          << " snapshot=" << (tailResume ? 0 : 1) << "\n";
    conn.outbuf += frameRecord(svc::wire::encodeReply(
        svc::wire::ReplyStatus::Ok, reply.str()));

    conn.replica = true;
    conn.lastHeartbeatMs = nowMs();
    ++stats_.replicas;
    hub->noteSubscribe();
    if (tailResume) {
        conn.replCursor = command.syncSeq;
        conn.replStreamId = command.syncStreamId;
    } else {
        queueSnapshot(conn);
    }
}

void
SocketServer::queueSnapshot(Connection &conn)
{
    repl::ReplicationHub *hub = options_.replicationHub;
    std::uint64_t atSeq = 0;
    repl::ReplMessage message;
    message.kind = repl::MessageKind::Snapshot;
    // captureReplicationSnapshot pins (state, headSeq) atomically:
    // records after atSeq are exactly what the state lacks.
    message.payload = service_.captureReplicationSnapshot(atSeq);
    message.streamId = hub->streamId();
    message.seq = atSeq;
    conn.outbuf += frameRecord(repl::encodeReplMessage(message));
    conn.replCursor = atSeq;
    conn.replStreamId = message.streamId;
    hub->noteSnapshotSync();
}

void
SocketServer::handleReplicaFrame(Connection &conn,
                                 std::string_view payload)
{
    repl::ReplicationHub *hub = options_.replicationHub;
    try {
        const repl::ReplMessage message =
            repl::decodeReplMessage(payload);
        REF_REQUIRE(message.kind == repl::MessageKind::Ack,
                    "replica sent frame kind "
                        << static_cast<unsigned>(message.kind));
        if (hub != nullptr)
            hub->noteAck(message.seq, message.timestampNs);
    } catch (const FatalError &error) {
        // A replica that stops speaking Ack is broken; drop it and
        // let the follower's reconnect path resync.
        ++stats_.badFrames;
        metrics_->badFrames.add();
        dropConnection(conn, "bad replica frame");
    }
}

void
SocketServer::pumpReplicas()
{
    repl::ReplicationHub *hub = options_.replicationHub;
    if (hub == nullptr)
        return;
    const std::int64_t now = nowMs();
    for (auto &connPtr : connections_) {
        Connection &conn = *connPtr;
        if (conn.dead || !conn.replica)
            continue;
        // Bound one pass's batch; the ring holds the rest (and a
        // cursor that falls off it just resyncs from a snapshot).
        std::vector<repl::ReplicationHub::Entry> entries;
        if (conn.replStreamId != hub->streamId() ||
            !hub->fetchAfter(conn.replCursor, 256, entries)) {
            queueSnapshot(conn);
            entries.clear();
            hub->fetchAfter(conn.replCursor, 256, entries);
        }
        if (!entries.empty()) {
            for (const auto &entry : entries) {
                repl::ReplMessage message;
                message.kind = repl::MessageKind::Record;
                message.seq = entry.seq;
                message.timestampNs = entry.shipTimestampNs;
                message.stateHash = entry.stateHash;
                message.payload = entry.payload;
                conn.outbuf +=
                    frameRecord(repl::encodeReplMessage(message));
            }
            conn.replCursor = entries.back().seq;
            conn.lastHeartbeatMs = now;
            // Durable-before-wire: the flush below barriers the
            // journal before these records leave the process.
            barrierPending_ = true;
        } else if (options_.heartbeatIntervalMs > 0 &&
                   now - conn.lastHeartbeatMs >=
                       options_.heartbeatIntervalMs) {
            repl::ReplMessage heartbeat;
            heartbeat.kind = repl::MessageKind::Heartbeat;
            heartbeat.seq = hub->headSeq();
            heartbeat.timestampNs = wallClockNs();
            conn.outbuf +=
                frameRecord(repl::encodeReplMessage(heartbeat));
            conn.lastHeartbeatMs = now;
            hub->noteHeartbeat();
        }
        if (conn.pending() > 0)
            flushWrites(conn);
    }
}

/** The one framed ERR a bad binary frame draws; counted as a
 *  rejected command so STATS agrees across framings. */
void
SocketServer::rejectBadFrame(Connection &conn,
                             const std::string &reason)
{
    ++stats_.badFrames;
    metrics_->badFrames.add();
    service_.noteRejected();
    ++conn.session->result().commands;
    ++conn.session->result().errors;
    conn.outbuf += frameRecord(svc::wire::encodeReply(
        svc::wire::ReplyStatus::Err, "ERR " + reason + "\n"));
}

void
SocketServer::flushWrites(Connection &conn)
{
    if (barrierPending_) {
        // Ack-after-durable: everything queued this pass — replies
        // and shipped records alike — waits on one group-commit
        // fsync before any byte reaches a socket.
        barrierPending_ = false;
        service_.journalBarrier();
    }
    while (conn.pending() > 0) {
        const NetInject inject = injectNetIo("net.write");
        ssize_t wrote = -1;
        if (inject.fail) {
            errno = inject.errnoValue;
        } else {
            std::size_t count = conn.pending();
            if (inject.shortIo)
                count = std::max<std::size_t>(1, count / 2);
            // MSG_NOSIGNAL: a vanished peer must surface as EPIPE,
            // not a process-killing SIGPIPE.
            wrote = ::send(conn.fd,
                           conn.outbuf.data() + conn.outOffset,
                           count, MSG_NOSIGNAL);
        }
        if (wrote < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            // EPIPE/ECONNRESET/injected EIO: the peer is gone or
            // the path is broken; the allocator already applied the
            // command, only this client's transcript ends early.
            ++stats_.ioErrors;
            dropConnection(conn, "write error");
            return;
        }
        conn.outOffset += static_cast<std::size_t>(wrote);
        conn.lastProgressMs = nowMs();
        stats_.bytesOut += static_cast<std::uint64_t>(wrote);
        metrics_->bytesOut.add(
            static_cast<std::uint64_t>(wrote));
        if (inject.shortIo)
            return;  // Model one short write per armed pass.
    }
    if (conn.outOffset > 0) {
        conn.outbuf.erase(0, conn.outOffset);
        conn.outOffset = 0;
    }
}

void
SocketServer::dropConnection(Connection &conn, const char *reason)
{
    if (conn.dead)
        return;
    ++stats_.dropped;
    metrics_->dropped.add();
    REF_WARN("dropping client: " << reason);
    // A drop is abortive: linger(0) turns the close into an RST so
    // the kernel reclaims the socket now instead of trickling
    // megabytes of buffered replies to a peer that will not read
    // them. Clean closes (EOF, drain) keep the graceful FIN.
    const linger abort{1, 0};
    ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &abort,
                 sizeof(abort));
    closeConnection(conn);
}

void
SocketServer::closeConnection(Connection &conn)
{
    if (conn.dead)
        return;
    conn.dead = true;
    if (conn.replica && options_.replicationHub != nullptr)
        options_.replicationHub->noteUnsubscribe();
    ::close(conn.fd);
    conn.fd = -1;
    conn.session->finish();
    const svc::SessionResult &result = conn.session->result();
    stats_.protocol.commands += result.commands;
    stats_.protocol.errors += result.errors;
    stats_.protocol.epochFailures += result.epochFailures;
    stats_.protocol.shutdown |= result.shutdown;
}

int
SocketServer::sweepTimeouts()
{
    const std::int64_t now = nowMs();
    std::int64_t nextDeadline = -1;
    const auto consider = [&](std::int64_t deadline) {
        if (nextDeadline < 0 || deadline < nextDeadline)
            nextDeadline = deadline;
    };
    for (auto &conn : connections_) {
        if (conn->dead)
            continue;
        if (conn->pending() > 0 && options_.writeTimeoutMs > 0) {
            const std::int64_t deadline =
                conn->lastProgressMs + options_.writeTimeoutMs;
            if (now >= deadline) {
                ++stats_.writeTimeouts;
                metrics_->writeTimeouts.add();
                dropConnection(*conn, "write timeout");
                continue;
            }
            consider(deadline);
        } else if (conn->pending() == 0 &&
                   options_.idleTimeoutMs > 0) {
            const std::int64_t deadline =
                conn->lastInboundMs + options_.idleTimeoutMs;
            if (now >= deadline) {
                ++stats_.idleTimeouts;
                metrics_->idleTimeouts.add();
                dropConnection(*conn, "idle timeout");
                continue;
            }
            consider(deadline);
        }
    }
    if (nextDeadline < 0)
        return -1;
    return static_cast<int>(std::max<std::int64_t>(
        1, nextDeadline - now));
}

void
SocketServer::drainAndClose()
{
    const std::int64_t deadline =
        nowMs() + std::max(0, options_.drainTimeoutMs);
    for (;;) {
        std::vector<pollfd> fds;
        for (auto &conn : connections_) {
            if (conn->dead || conn->pending() == 0)
                continue;
            fds.push_back({conn->fd, POLLOUT, 0});
        }
        if (fds.empty())
            break;
        const std::int64_t left = deadline - nowMs();
        if (left <= 0)
            break;
        const int ready = ::poll(fds.data(), fds.size(),
                                 static_cast<int>(left));
        if (ready < 0 && errno != EINTR)
            break;
        for (auto &conn : connections_) {
            if (!conn->dead && conn->pending() > 0)
                flushWrites(*conn);
        }
    }
    for (auto &conn : connections_)
        closeConnection(*conn);
    connections_.clear();
    metrics_->active.set(0);
    if (tcpListenFd_ >= 0) {
        ::close(tcpListenFd_);
        tcpListenFd_ = -1;
    }
    if (unixListenFd_ >= 0) {
        ::close(unixListenFd_);
        unixListenFd_ = -1;
    }
    if (!boundUnixPath_.empty()) {
        ::unlink(boundUnixPath_.c_str());
        boundUnixPath_.clear();
    }
}

ServerStats
SocketServer::run()
{
    REF_REQUIRE(tcpListenFd_ >= 0 || unixListenFd_ >= 0,
                "run() before start()");
    while (!draining_) {
        if (stopFlagSet()) {
            stats_.shutdown = true;
            break;
        }

        // Reap connections closed during the previous pass.
        connections_.erase(
            std::remove_if(connections_.begin(),
                           connections_.end(),
                           [](const auto &conn) {
                               return conn->dead;
                           }),
            connections_.end());
        metrics_->active.set(
            static_cast<double>(connections_.size()));

        const int timeoutMs = sweepTimeouts();

        std::vector<pollfd> fds;
        std::vector<Connection *> polled;
        if (tcpListenFd_ >= 0)
            fds.push_back({tcpListenFd_, POLLIN, 0});
        if (unixListenFd_ >= 0)
            fds.push_back({unixListenFd_, POLLIN, 0});
        if (wakeFds_[0] >= 0)
            fds.push_back({wakeFds_[0], POLLIN, 0});
        const std::size_t firstConn = fds.size();
        for (auto &conn : connections_) {
            if (conn->dead)
                continue;
            short events = POLLIN;
            if (conn->pending() > 0)
                events |= POLLOUT;
            fds.push_back({conn->fd, events, 0});
            polled.push_back(conn.get());
        }

        const int ready =
            ::poll(fds.data(), fds.size(),
                   timeoutMs < 0 ? 1000 : std::min(timeoutMs, 1000));
        if (ready < 0) {
            if (errno == EINTR)
                continue;  // Signal: loop re-checks the stop flag.
            REF_FATAL("poll: " << std::strerror(errno));
        }
        if (ready == 0)
            continue;  // Timeout pass: sweepTimeouts sees it next.

        for (std::size_t i = 0; i < firstConn; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            if (fds[i].fd == wakeFds_[0]) {
                // Drain the self-pipe; the loop condition re-checks
                // the stop flag at the top.
                char drain[64];
                while (::read(wakeFds_[0], drain,
                              sizeof(drain)) > 0)
                    ;
            } else {
                acceptPending(fds[i].fd);
            }
        }

        for (std::size_t i = firstConn;
             i < fds.size() && !draining_; ++i) {
            Connection &conn = *polled[i - firstConn];
            if (conn.dead)
                continue;
            if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
                // Peer reset with no clean EOF; a read would error.
                if (fds[i].revents & POLLHUP) {
                    // Drain what the kernel still buffers first —
                    // HUP with readable data is a normal close.
                    handleReadable(conn);
                    if (!conn.dead)
                        closeConnection(conn);
                } else {
                    ++stats_.ioErrors;
                    dropConnection(conn, "socket error");
                }
                continue;
            }
            if (fds[i].revents & POLLOUT)
                flushWrites(conn);
            if (conn.dead)
                continue;
            if (fds[i].revents & POLLIN)
                handleReadable(conn);
            if (!conn.dead && conn.pending() > 0)
                flushWrites(conn);
        }

        // Ship whatever this pass appended (plus heartbeats) to
        // every subscribed replica before blocking again.
        if (!draining_)
            pumpReplicas();
    }
    drainAndClose();
    return stats_;
}

} // namespace ref::net
