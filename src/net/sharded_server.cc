#include "sharded_server.hh"

#include <string>
#include <thread>

#include "util/logging.hh"

namespace ref::net {

ShardedServer::ShardedServer(svc::AllocationService &service,
                             ServerOptions options,
                             std::size_t shardCount)
    : service_(service), options_(std::move(options)),
      requestedShards_(shardCount)
{
    REF_REQUIRE(shardCount >= 1, "shard count must be at least 1");
}

void
ShardedServer::start()
{
    REF_REQUIRE(shards_.empty(), "start() called twice");

    if (requestedShards_ == 1) {
        // Degenerate to the classic single server: unlabeled metric
        // series, no SO_REUSEPORT, Unix listener as configured.
        shards_.push_back(
            std::make_unique<SocketServer>(service_, options_));
        shards_.back()->start();
        return;
    }

    REF_REQUIRE(!options_.listenAddress.empty(),
                "multi-shard serving needs a TCP --listen address");

    // Shard 0 binds the configured address (port 0 allowed) and
    // thereby picks the concrete port the rest must join.
    ServerOptions first = options_;
    first.reusePort = true;
    first.shardIndex = 0;
    first.shardCount = requestedShards_;
    shards_.push_back(
        std::make_unique<SocketServer>(service_, first));
    shards_.back()->start();

    const std::string &spec = options_.listenAddress;
    const std::string host = spec.substr(0, spec.rfind(':'));
    const std::string joined =
        host + ":" + std::to_string(shards_.front()->tcpPort());
    for (std::size_t i = 1; i < requestedShards_; ++i) {
        ServerOptions opts = options_;
        opts.reusePort = true;
        opts.shardIndex = i;
        opts.shardCount = requestedShards_;
        opts.listenAddress = joined;
        opts.unixPath.clear();  // Unix listener lives on shard 0.
        shards_.push_back(
            std::make_unique<SocketServer>(service_, opts));
        shards_.back()->start();
    }
}

std::uint16_t
ShardedServer::tcpPort() const
{
    REF_REQUIRE(!shards_.empty(), "tcpPort() before start()");
    return shards_.front()->tcpPort();
}

void
ShardedServer::requestStop()
{
    for (auto &shard : shards_)
        shard->requestStop();
}

ShardedStats
ShardedServer::run()
{
    REF_REQUIRE(!shards_.empty(), "run() before start()");

    ShardedStats stats;
    stats.shards.resize(shards_.size());

    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        threads.emplace_back([this, i, &stats] {
            stats.shards[i] = shards_[i]->run();
            // First shard out (SHUTDOWN command, stop flag) stops
            // the rest; their self-pipes wake idle polls promptly.
            requestStop();
        });
    }
    for (auto &thread : threads)
        thread.join();
    // Joins above give us happens-before on every shard's stats.

    for (const ServerStats &shard : stats.shards) {
        ServerStats &total = stats.total;
        total.accepted += shard.accepted;
        total.dropped += shard.dropped;
        total.idleTimeouts += shard.idleTimeouts;
        total.writeTimeouts += shard.writeTimeouts;
        total.overflowDrops += shard.overflowDrops;
        total.acceptRejects += shard.acceptRejects;
        total.ioErrors += shard.ioErrors;
        total.bytesIn += shard.bytesIn;
        total.bytesOut += shard.bytesOut;
        total.lines += shard.lines;
        total.overlongLines += shard.overlongLines;
        total.frames += shard.frames;
        total.badFrames += shard.badFrames;
        total.binaryConnections += shard.binaryConnections;
        total.replicas += shard.replicas;
        total.protocol.commands += shard.protocol.commands;
        total.protocol.errors += shard.protocol.errors;
        total.protocol.epochFailures += shard.protocol.epochFailures;
        total.protocol.shutdown |= shard.protocol.shutdown;
        total.shutdown |= shard.shutdown;
    }
    return stats;
}

} // namespace ref::net
