#include "fleet.hh"

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "adv/socket_client.hh"
#include "adv/strategic_agent.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ref::adv {
namespace {

/** Seeded raw elasticities for agent @p index: a pure function of
 *  (seed, index), independent of connections and interleavings. */
linalg::Vector
drawElasticities(std::uint64_t seed, std::size_t index,
                 std::size_t resources)
{
    Rng rng(seed * 1000003ull + index);
    linalg::Vector alphas(resources);
    for (double &alpha : alphas)
        alpha = rng.uniform(0.1, 1.0);
    return alphas;
}

void
expectOk(const std::string &reply, const char *what)
{
    REF_REQUIRE(reply.rfind("ERR ", 0) != 0,
                what << " rejected: " << reply);
}

/** Parse "SHARE <name> <v0> <v1> ..." into the share vector. */
linalg::Vector
parseShare(const std::string &reply, std::size_t resources)
{
    REF_REQUIRE(reply.rfind("SHARE ", 0) == 0,
                "expected a SHARE reply, got: " << reply);
    std::istringstream stream(reply);
    std::string keyword, name;
    stream >> keyword >> name;
    linalg::Vector shares;
    double value = 0;
    while (stream >> value)
        shares.push_back(value);
    REF_REQUIRE(shares.size() == resources,
                "SHARE reply spans " << shares.size()
                                     << " resources, expected "
                                     << resources);
    return shares;
}

/** Last si/ef margins of one label in a labelled fairness CSV. */
struct LabelMargins
{
    bool found = false;
    double siMargin = 1.0;
    double efMargin = 1.0;
};

LabelMargins
lastMargins(const std::string &csv, const std::string &label)
{
    LabelMargins margins;
    std::istringstream stream(csv);
    std::string line;
    const std::string prefix = label + ",";
    while (std::getline(stream, line)) {
        if (line.rfind(prefix, 0) != 0)
            continue;
        // label,epoch,agents,checked,si_margin,ef_margin,...
        std::vector<std::string> cells;
        std::istringstream row(line);
        std::string cell;
        while (std::getline(row, cell, ','))
            cells.push_back(cell);
        if (cells.size() < 6 || cells[3] != "1")
            continue;  // Unchecked epochs carry no margins.
        margins.found = true;
        margins.siMargin = std::stod(cells[4]);
        margins.efMargin = std::stod(cells[5]);
    }
    return margins;
}

svc::Command
queryCommand(const std::string &name)
{
    svc::Command command;
    command.op = svc::Command::Op::Query;
    command.hasName = true;
    command.name = name;
    return command;
}

} // namespace

FleetReport
runFleet(const FleetOptions &options)
{
    REF_REQUIRE(options.agents >= 2,
                "a fleet needs at least two agents");
    REF_REQUIRE(options.liars <= options.agents,
                "more liars than agents");
    const std::size_t resources = options.capacity.count();

    // The population: liars first (index < K), honest after. Every
    // agent starts truthful; only liars ever move.
    std::vector<StrategicAgent> agents;
    agents.reserve(options.agents);
    for (std::size_t i = 0; i < options.agents; ++i) {
        const bool liar = i < options.liars;
        agents.emplace_back(
            (liar ? "liar" : "h") + std::to_string(i),
            drawElasticities(options.seed, i, resources));
    }

    ServiceClient control(options.connect, options.binary);
    std::vector<std::unique_ptr<ServiceClient>> liarConns;
    for (std::size_t k = 0; k < options.liars; ++k)
        liarConns.push_back(std::make_unique<ServiceClient>(
            options.connect, options.binary));

    // Prologue: admit and label everyone, one pipelined flush.
    std::vector<svc::Command> prologue;
    for (std::size_t i = 0; i < options.agents; ++i) {
        svc::Command admit;
        admit.op = svc::Command::Op::Admit;
        admit.name = agents[i].name();
        admit.elasticities = agents[i].trueAlphas();
        prologue.push_back(admit);
        svc::Command cohort;
        cohort.op = svc::Command::Op::Cohort;
        cohort.name = agents[i].name();
        cohort.cohortLabel = i < options.liars ? "liar" : "honest";
        prologue.push_back(cohort);
    }
    for (const std::string &reply : control.roundTripAll(prologue))
        expectOk(reply, "fleet prologue");

    svc::Command tick;
    tick.op = svc::Command::Op::Tick;

    // All-truthful baseline epoch.
    expectOk(control.roundTrip(tick), "baseline TICK");
    std::vector<svc::Command> queryAll;
    for (const StrategicAgent &agent : agents)
        queryAll.push_back(queryCommand(agent.name()));
    std::vector<double> truthful(options.agents, 0.0);
    {
        const auto replies = control.roundTripAll(queryAll);
        for (std::size_t i = 0; i < options.agents; ++i)
            truthful[i] = agents[i].utilityOf(
                parseShare(replies[i], resources));
    }

    FleetReport report;
    report.agents = options.agents;
    report.liars = options.liars;

    // Best-response rounds: liars query in parallel, respond, send
    // any UPDATEs in parallel, and only after every UPDATE reply is
    // in (the barrier) does the control connection advance the
    // epoch. A round with no movement is the fix-point.
    for (std::uint64_t round = 0; round < options.maxRounds;
         ++round) {
        // 1. Self-queries, all in flight before any reply is read.
        // Every QUERY answers from the published epoch snapshot
        // (only TICK changes it), so what each liar observes is
        // independent of how the server interleaves them.
        for (std::size_t k = 0; k < options.liars; ++k)
            liarConns[k]->send(queryCommand(agents[k].name()));
        bool anyMoved = false;
        std::vector<bool> moved(options.liars, false);
        for (std::size_t k = 0; k < options.liars; ++k) {
            const linalg::Vector shares = parseShare(
                liarConns[k]->readReply(), resources);
            moved[k] = agents[k].respond(shares, options.capacity,
                                         options.tolerance);
            anyMoved = anyMoved || moved[k];
        }
        if (!anyMoved) {
            report.converged = true;
            break;
        }
        // 2. Interleaved re-reports: every moved liar's UPDATE goes
        // out before any reply is read, so on a sharded server the
        // writes genuinely race across shard threads; the mechanism
        // is order-independent, so the outcome is not.
        for (std::size_t k = 0; k < options.liars; ++k) {
            if (!moved[k])
                continue;
            svc::Command update;
            update.op = svc::Command::Op::Update;
            update.name = agents[k].name();
            update.elasticities = agents[k].report();
            liarConns[k]->send(update);
        }
        for (std::size_t k = 0; k < options.liars; ++k) {
            if (moved[k])
                expectOk(liarConns[k]->readReply(), "re-report");
        }
        // 3. Barrier passed; advance the epoch.
        expectOk(control.roundTrip(tick), "round TICK");
        ++report.rounds;
    }

    // Final measurement at the fixed (or capped) reports.
    {
        const auto replies = control.roundTripAll(queryAll);
        double gainSum = 0;
        for (std::size_t i = 0; i < options.agents; ++i) {
            const double utility = agents[i].utilityOf(
                parseShare(replies[i], resources));
            report.welfareFinal += utility;
            report.welfareTruthful += truthful[i];
            if (i < options.liars) {
                const double gain = utility / truthful[i];
                gainSum += gain;
                report.gainRatio =
                    std::max(report.gainRatio, gain);
                report.reportDeviation =
                    std::max(report.reportDeviation,
                             agents[i].reportDeviation());
            }
        }
        report.meanGainRatio =
            options.liars > 0 ? gainSum / options.liars : 1.0;
        report.utilizationLoss =
            1.0 - report.welfareFinal / report.welfareTruthful;
    }

    const std::string csv =
        control.fairnessCsv(agents.front().name());
    const LabelMargins honest = lastMargins(csv, "honest");
    if (honest.found) {
        report.honestSiMargin = honest.siMargin;
        report.honestEfMargin = honest.efMargin;
    }
    const LabelMargins liar = lastMargins(csv, "liar");
    if (liar.found)
        report.liarSiMargin = liar.siMargin;

    if (options.departAfter) {
        std::vector<svc::Command> epilogue;
        for (const StrategicAgent &agent : agents) {
            svc::Command depart;
            depart.op = svc::Command::Op::Depart;
            depart.name = agent.name();
            epilogue.push_back(depart);
        }
        for (const std::string &reply :
             control.roundTripAll(epilogue))
            expectOk(reply, "fleet epilogue");
    }

    report.commands = control.commandsSent();
    for (const auto &conn : liarConns)
        report.commands += conn->commandsSent();
    return report;
}

} // namespace ref::adv
