/**
 * @file
 * Adversarial agent fleet: the strategy-proofness experiment run
 * against a live ref_serve socket front-end.
 *
 * One run admits N agents with seeded elasticities, labels the first
 * K as cohort "liar" and the rest "honest" (COHORT), then plays
 * epoch-synchronized best-response dynamics: each round every liar
 * QUERYs its own share on its private connection, infers opponent
 * mass, best-responds (core::bestResponseAgainst), re-reports via
 * UPDATE when the report moved, and — after all UPDATE replies are
 * in (the barrier) — the control connection TICKs once. Rounds stop
 * at a report fix-point or the round cap. Honest agents never
 * re-report; their SI/EF damage is read from the service's labelled
 * fairness telemetry, not computed client-side.
 *
 * Everything is a pure function of (seed, options): elasticities are
 * drawn per agent index, all QUERYs read the published epoch
 * snapshot (stable between TICKs), and the mechanism's allocation is
 * order-independent — so the report is byte-stable across text vs
 * binary framing and across server shard counts, which is exactly
 * what the determinism test asserts.
 */

#ifndef REF_ADV_FLEET_HH
#define REF_ADV_FLEET_HH

#include <cstdint>
#include <string>

#include "core/resource.hh"

namespace ref::adv {

/** One fleet run's configuration. */
struct FleetOptions
{
    std::string connect;       //!< "addr:port" of ref_serve.
    bool binary = false;       //!< REFBIN framing instead of text.
    std::size_t agents = 8;    //!< Total population N (>= 2).
    std::size_t liars = 1;     //!< Strategic agents K (<= N).
    /** Re-report round cap E (a fix-point usually lands earlier). */
    std::uint64_t maxRounds = 16;
    std::uint64_t seed = 42;
    /** L-inf report movement below which a liar stops updating. */
    double tolerance = 1e-9;
    /** Must match the server's --capacity. */
    core::SystemCapacity capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    /** DEPART every admitted agent after measuring, so one server
     *  can host a whole N-sweep back to back. */
    bool departAfter = true;
};

/** What one fleet run measured. */
struct FleetReport
{
    std::size_t agents = 0;
    std::size_t liars = 0;
    /** Re-report rounds played (each ends in one TICK). */
    std::uint64_t rounds = 0;
    /** True when reports fix-pointed before the round cap. */
    bool converged = false;
    /** Protocol commands issued across all connections. */
    std::uint64_t commands = 0;

    /** Max over liars of u(final) / u(truthful baseline). */
    double gainRatio = 1.0;
    /** Mean over liars of the same ratio. */
    double meanGainRatio = 1.0;
    /** Max over liars of L-inf(final report, truth). */
    double reportDeviation = 0.0;

    /** Sum of true utilities, all agents, truthful baseline. */
    double welfareTruthful = 0.0;
    /** Same sum at the final reports. */
    double welfareFinal = 0.0;
    /** 1 - welfareFinal / welfareTruthful (gaming's efficiency
     *  cost, cf. Feldman et al.'s price-anticipating analysis). */
    double utilizationLoss = 0.0;

    /** Honest cohort's margins from the labelled fairness series
     *  (last checked epoch); 1.0 when there are no honest agents. */
    double honestSiMargin = 1.0;
    double honestEfMargin = 1.0;
    /** Liar cohort's SI margin, same source. */
    double liarSiMargin = 1.0;
};

/** Run one experiment against a live server. Throws FatalError on
 *  transport loss or any ERR reply (the fleet only sends commands
 *  it expects to succeed). */
FleetReport runFleet(const FleetOptions &options);

} // namespace ref::adv

#endif // REF_ADV_FLEET_HH
