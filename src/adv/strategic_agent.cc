#include "strategic_agent.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math.hh"

namespace ref::adv {

StrategicAgent::StrategicAgent(std::string name,
                               linalg::Vector trueAlphas)
    : name_(std::move(name)),
      trueAlphas_(normalizeToUnitSum(trueAlphas)),
      report_(trueAlphas_)
{}

double
StrategicAgent::reportDeviation() const
{
    double deviation = 0;
    for (std::size_t r = 0; r < report_.size(); ++r)
        deviation = std::max(
            deviation, std::abs(report_[r] - trueAlphas_[r]));
    return deviation;
}

linalg::Vector
StrategicAgent::inferOthers(const linalg::Vector &shares,
                            const core::SystemCapacity &capacity) const
{
    REF_REQUIRE(shares.size() == capacity.count(),
                "share vector does not span the capacity");
    linalg::Vector others(shares.size(), 0.0);
    for (std::size_t r = 0; r < shares.size(); ++r) {
        REF_REQUIRE(shares[r] > 0,
                    "agent '" << name_ << "' observed a zero share "
                              << "of resource " << r);
        // s_r = w_r / (w_r + o_r) * C_r  =>  o_r = w_r (C_r-s_r)/s_r.
        // Alone in the system s_r == C_r and o_r is exactly 0.
        others[r] = std::max(
            0.0, report_[r] *
                     (capacity.capacity(r) - shares[r]) / shares[r]);
    }
    return others;
}

bool
StrategicAgent::respond(const linalg::Vector &shares,
                        const core::SystemCapacity &capacity,
                        double tolerance)
{
    const linalg::Vector others = inferOthers(shares, capacity);
    const core::BestResponse best =
        core::bestResponseAgainst(trueAlphas_, others, capacity);
    lastGainRatio_ = best.gainRatio;

    linalg::Vector next = best.report;
    // The registry rejects non-positive elasticities; a best
    // response that underflowed a coordinate to zero still means
    // "as little as possible", so clamp and renormalize.
    for (double &value : next)
        value = std::max(value, 1e-12);
    next = normalizeToUnitSum(next);

    double moved = 0;
    for (std::size_t r = 0; r < next.size(); ++r)
        moved = std::max(moved, std::abs(next[r] - report_[r]));
    if (moved <= tolerance)
        return false;
    report_ = next;
    return true;
}

double
StrategicAgent::utilityOf(const linalg::Vector &shares) const
{
    double log_utility = 0;
    for (std::size_t r = 0; r < shares.size(); ++r)
        log_utility += trueAlphas_[r] * std::log(shares[r]);
    return std::exp(log_utility);
}

} // namespace ref::adv
