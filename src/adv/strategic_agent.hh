/**
 * @file
 * One strategic client: infers opponent elasticity mass from its
 * own observed allocation and best-responds with the same search the
 * offline analysis uses (core::bestResponseAgainst).
 *
 * Under proportional elasticity the agent's share of resource r is
 *
 *     s_r = w_r / (w_r + o_r) * C_r
 *
 * where w is its own reported rescaled elasticity vector and o_r the
 * sum of everyone else's. The client knows w (it reported it) and
 * observes s_r via QUERY, so it can solve for the only unknown:
 *
 *     o_r = w_r * (C_r - s_r) / s_r
 *
 * — no cooperation, no privileged telemetry, exactly the information
 * any tenant of the live service holds. Each epoch it recomputes the
 * best response against the inferred o and re-reports when the
 * result moved; reports fix-point when the search returns the report
 * it is already making.
 */

#ifndef REF_ADV_STRATEGIC_AGENT_HH
#define REF_ADV_STRATEGIC_AGENT_HH

#include <string>

#include "core/resource.hh"
#include "core/strategic.hh"

namespace ref::adv {

/** Client-side state of one strategic (or honest) agent. */
class StrategicAgent
{
  public:
    /** @p trueAlphas raw; stored rescaled (the mechanism's view). */
    StrategicAgent(std::string name, linalg::Vector trueAlphas);

    const std::string &name() const { return name_; }
    /** Rescaled true elasticities. */
    const linalg::Vector &trueAlphas() const { return trueAlphas_; }
    /** Rescaled report currently on file with the service. */
    const linalg::Vector &report() const { return report_; }
    /** L-inf distance of the current report from the truth. */
    double reportDeviation() const;

    /**
     * Per-resource opponent mass inferred from the observed share
     * vector @p shares (capacity units, as QUERY prints them).
     */
    linalg::Vector
    inferOthers(const linalg::Vector &shares,
                const core::SystemCapacity &capacity) const;

    /**
     * One best-response step against @p shares: recompute the
     * optimal report and adopt it when it moves more than
     * @p tolerance (L-inf) from the current one. Returns true when
     * the report changed (the caller must then UPDATE the service).
     */
    bool respond(const linalg::Vector &shares,
                 const core::SystemCapacity &capacity,
                 double tolerance);

    /** True utility of a bundle under the rescaled true alphas. */
    double utilityOf(const linalg::Vector &shares) const;

    /** Gain ratio reported by the last respond() search. */
    double lastGainRatio() const { return lastGainRatio_; }

  private:
    std::string name_;
    linalg::Vector trueAlphas_;
    linalg::Vector report_;
    double lastGainRatio_ = 1.0;
};

} // namespace ref::adv

#endif // REF_ADV_STRATEGIC_AGENT_HH
