#include "socket_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "svc/wire.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::adv {
namespace {

/** Blocking TCP connect to "addr:port" (numeric IPv4). */
int
connectTo(const std::string &spec)
{
    const std::size_t colon = spec.rfind(':');
    REF_REQUIRE(colon != std::string::npos && colon > 0,
                "connect spec wants addr:port, got '" << spec << "'");
    const std::string host = spec.substr(0, colon);
    const int port = std::stoi(spec.substr(colon + 1));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    REF_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) ==
                    1,
                "connect spec wants a numeric IPv4 address, got '"
                    << host << "'");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    REF_REQUIRE(fd >= 0, "socket: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    REF_REQUIRE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                "connect " << spec << ": " << std::strerror(errno));
    return fd;
}

void
sendAll(int fd, std::string_view bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote =
            ::send(fd, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            REF_FATAL("send: " << std::strerror(errno));
        }
        sent += static_cast<std::size_t>(wrote);
    }
}

/** Shortest decimal that round-trips the exact double, so the text
 *  framing carries the same bits as the binary one. */
std::string
formatDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    REF_ASSERT(ec == std::errc(), "to_chars failed");
    return std::string(buffer, end);
}

/** Render a Command as one text-protocol line (no newline). Only
 *  the command shapes the fleet issues are supported. */
std::string
textLine(const svc::Command &command)
{
    std::string line;
    switch (command.op) {
    case svc::Command::Op::Admit:
    case svc::Command::Op::Update:
        line = command.op == svc::Command::Op::Admit ? "ADMIT "
                                                     : "UPDATE ";
        line += command.name;
        for (const double value : command.elasticities) {
            line += ' ';
            line += formatDouble(value);
        }
        return line;
    case svc::Command::Op::Depart:
        return "DEPART " + command.name;
    case svc::Command::Op::Cohort:
        return "COHORT " + command.name + " " + command.cohortLabel;
    case svc::Command::Op::Tick:
        return command.tickCount == 1
                   ? std::string("TICK")
                   : "TICK " + std::to_string(command.tickCount);
    case svc::Command::Op::Query:
        return command.hasName ? "QUERY " + command.name
                               : std::string("QUERY");
    case svc::Command::Op::Metrics:
        return "METRICS " + command.metricsFormat;
    default:
        REF_FATAL("fleet client cannot serialize opcode "
                  << static_cast<unsigned>(command.op));
    }
}

} // namespace

ServiceClient::ServiceClient(const std::string &addrPort, bool binary)
    : fd_(connectTo(addrPort)), binary_(binary)
{
    if (!binary_)
        return;
    sendAll(fd_, svc::wire::helloMagic());
    std::string payload;
    REF_REQUIRE(readFrameUnit(payload),
                "no hello ack from server");
    const svc::wire::Reply ack = svc::wire::decodeReply(payload);
    REF_REQUIRE(ack.status == svc::wire::ReplyStatus::Hello,
                "bad hello ack from server");
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ServiceClient::fill()
{
    if (offset_ > 0 && offset_ == buffer_.size()) {
        buffer_.clear();
        offset_ = 0;
    }
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return false;  // EOF or error: server went away.
        buffer_.append(chunk, static_cast<std::size_t>(got));
        return true;
    }
}

bool
ServiceClient::readLine(std::string &line)
{
    for (;;) {
        const std::size_t newline = buffer_.find('\n', offset_);
        if (newline != std::string::npos) {
            line.assign(buffer_, offset_, newline - offset_);
            offset_ = newline + 1;
            return true;
        }
        if (!fill())
            return false;
    }
}

bool
ServiceClient::readFrameUnit(std::string &payload)
{
    for (;;) {
        std::size_t at = offset_;
        std::string_view view;
        const FrameStatus status = readFrame(buffer_, at, view);
        if (status == FrameStatus::Ok) {
            payload.assign(view);
            offset_ = at;
            return true;
        }
        REF_REQUIRE(status != FrameStatus::Corrupt,
                    "corrupt reply frame from server");
        if (!fill())
            return false;
    }
}

void
ServiceClient::send(const svc::Command &command)
{
    ++commands_;
    if (binary_) {
        sendAll(fd_,
                frameRecord(svc::wire::encodeCommand(command)));
        return;
    }
    sendAll(fd_, textLine(command) + "\n");
}

std::string
ServiceClient::readReply()
{
    if (binary_) {
        std::string payload;
        REF_REQUIRE(readFrameUnit(payload),
                    "server closed the connection mid-reply");
        std::string text = svc::wire::decodeReply(payload).text;
        if (!text.empty() && text.back() == '\n')
            text.pop_back();
        return text;
    }
    std::string line;
    REF_REQUIRE(readLine(line),
                "server closed the connection mid-reply");
    return line;
}

std::string
ServiceClient::roundTrip(const svc::Command &command)
{
    send(command);
    return readReply();
}

std::vector<std::string>
ServiceClient::roundTripAll(const std::vector<svc::Command> &commands)
{
    for (const svc::Command &command : commands)
        send(command);
    std::vector<std::string> replies;
    replies.reserve(commands.size());
    for (std::size_t i = 0; i < commands.size(); ++i)
        replies.push_back(readReply());
    return replies;
}

std::string
ServiceClient::fairnessCsv(const std::string &sentinelAgent)
{
    svc::Command metrics;
    metrics.op = svc::Command::Op::Metrics;
    metrics.metricsFormat = "fairness";
    if (binary_) {
        send(metrics);
        std::string payload;
        REF_REQUIRE(readFrameUnit(payload),
                    "server closed the connection mid-reply");
        return svc::wire::decodeReply(payload).text;
    }
    // Text framing: the CSV block has no terminator, so a sentinel
    // QUERY rides behind it — CSV rows never start with "SHARE" or
    // "ERR", making the first such line an unambiguous end marker.
    svc::Command sentinel;
    sentinel.op = svc::Command::Op::Query;
    sentinel.hasName = true;
    sentinel.name = sentinelAgent;
    send(metrics);
    send(sentinel);
    --commands_;  // The sentinel is a framing artifact, not work:
                  // keep the command count framing-independent.
    std::string csv;
    for (;;) {
        std::string line;
        REF_REQUIRE(readLine(line),
                    "server closed the connection mid-reply");
        if (line.rfind("SHARE ", 0) == 0 ||
            line.rfind("ERR ", 0) == 0)
            return csv;
        csv += line;
        csv += '\n';
    }
}

} // namespace ref::adv
