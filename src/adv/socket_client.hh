/**
 * @file
 * Blocking protocol client for the allocation service's socket
 * front-end — the adversary fleet's transport.
 *
 * One ServiceClient is one TCP connection speaking either framing:
 * text lines (the default) or CRC32 binary frames negotiated with
 * the REFBIN hello. Commands go out as svc::Command, so a strategic
 * agent's behaviour is framing-independent by construction; text
 * serialization renders doubles with shortest-round-trip to_chars,
 * so the server parses back the exact bits the binary framing would
 * have carried and both framings drive the service through the
 * identical state sequence.
 *
 * Replies come back as the text-protocol block either way (the
 * binary reply payload IS the text block, see svc/wire.hh). The one
 * asymmetry is multi-line replies: a binary reply is one frame
 * regardless of length, while a text reply block has no terminator.
 * roundTrip() therefore serves single-reply-line commands only, and
 * fairnessCsv() handles the unbounded METRICS fairness block by
 * pipelining a QUERY sentinel behind it over text framing.
 */

#ifndef REF_ADV_SOCKET_CLIENT_HH
#define REF_ADV_SOCKET_CLIENT_HH

#include <string>
#include <vector>

#include "svc/protocol.hh"

namespace ref::adv {

/** One blocking client connection (text or binary framing). */
class ServiceClient
{
  public:
    /**
     * Connect to "addr:port" (numeric IPv4) and, with @p binary,
     * negotiate the REFBIN framing before returning. Throws
     * FatalError on connect or negotiation failure.
     */
    ServiceClient(const std::string &addrPort, bool binary);
    ~ServiceClient();
    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    bool binary() const { return binary_; }

    /** Commands sent over this connection (both framings). */
    std::uint64_t commandsSent() const { return commands_; }

    /**
     * Execute one command whose reply is a single line (ADMIT,
     * UPDATE, DEPART, COHORT, TICK, QUERY <name>); returns the line
     * without its newline ("OK ..." / "SHARE ..." / "ERR ...").
     * Throws FatalError when the server goes away mid-reply.
     */
    std::string roundTrip(const svc::Command &command);

    /** @name Split halves of roundTrip, for interleaving commands
     *  ACROSS connections (send on every connection first, then
     *  collect every reply — the fleet's re-report barrier). */
    ///@{
    void send(const svc::Command &command);
    /** One reply unit: a line (text) or a frame's text (binary). */
    std::string readReply();
    ///@}

    /**
     * Pipeline several single-reply-line commands: send them all,
     * then read the replies in order. Cuts the admit/label prologue
     * from 2N round trips to one flush at any fleet size.
     */
    std::vector<std::string>
    roundTripAll(const std::vector<svc::Command> &commands);

    /**
     * METRICS fairness: the per-epoch fairness series as CSV. Over
     * binary framing the block is exactly one reply frame; over text
     * it has no terminator, so a QUERY for @p sentinelAgent (which
     * must be live) is pipelined behind it and the block ends at the
     * sentinel's SHARE reply. Returns identical bytes either way.
     */
    std::string fairnessCsv(const std::string &sentinelAgent);

  private:
    int fd_ = -1;
    bool binary_ = false;
    std::uint64_t commands_ = 0;
    std::string buffer_;       //!< Receive buffer.
    std::size_t offset_ = 0;   //!< Consumed prefix of buffer_.
    bool fill();
    bool readLine(std::string &line);
    bool readFrameUnit(std::string &payload);
};

} // namespace ref::adv

#endif // REF_ADV_SOCKET_CLIENT_HH
