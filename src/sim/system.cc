#include "system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ref::sim {

CmpSystem::CmpSystem(const PlatformConfig &config)
    : config_(config), l1_(config.l1), l2_(config.l2),
      dram_(config.dram, config.core, config.l2.blockBytes)
{
    REF_REQUIRE(config_.core.issueWidth > 0, "issue width must be "
                                             "positive");
}

RunResult
CmpSystem::run(const Trace &trace, const TimingParams &timing,
               double warmup_fraction)
{
    REF_REQUIRE(timing.mlp >= 1.0, "mlp must be at least 1");
    REF_REQUIRE(timing.nonMemCpi >= 0, "nonMemCpi must be "
                                       "non-negative");
    REF_REQUIRE(warmup_fraction >= 0 && warmup_fraction < 1,
                "warmup fraction must be in [0, 1)");

    const double issue_cpi =
        1.0 / static_cast<double>(config_.core.issueWidth);
    // L2 hits overlap with independent work about two deep.
    const double l2_hit_overlap = std::min(timing.mlp, 2.0);

    const std::size_t warmup_ops = static_cast<std::size_t>(
        warmup_fraction * static_cast<double>(trace.ops.size()));

    double cycles = 0;
    double warmup_cycles = 0;
    std::uint64_t warmup_instructions = 0;
    std::uint64_t prefetches = 0;
    std::size_t op_index = 0;
    for (const MemOp &op : trace.ops) {
        if (op_index++ == warmup_ops && warmup_ops > 0) {
            // Cache and DRAM state carry over; only the counters
            // restart.
            warmup_cycles = cycles;
            l1_.clearStats();
            l2_.clearStats();
            dram_.clearStats();
        }
        if (op_index <= warmup_ops) {
            warmup_instructions += 1 + op.gapInstructions;
        }
        // Non-memory instructions since the last access, then the
        // access itself at issue width.
        cycles += op.gapInstructions * (issue_cpi + timing.nonMemCpi);
        cycles += issue_cpi;

        const auto l1_result = l1_.access(op.address, op.isWrite);
        if (l1_result.hit)
            continue;  // Pipelined L1 hit: no extra exposure.

        // Dirty L1 victims write back into L2 (no stall, but they
        // disturb L2 recency and may trigger DRAM writebacks below).
        if (l1_result.evictedDirty)
            l2_.access(l1_result.victimAddress, true);

        const auto l2_result = l2_.access(op.address, op.isWrite);
        if (l2_result.hit) {
            cycles +=
                config_.l2.latencyCycles / l2_hit_overlap;
            continue;
        }

        // L2 miss: fetch the block from DRAM. The exposed stall is
        // the queued latency divided by the workload's MLP.
        const auto issue = static_cast<std::uint64_t>(cycles);
        const std::uint64_t completion = dram_.access(issue, op.address);
        const double latency =
            static_cast<double>(completion - issue);
        cycles += config_.l2.latencyCycles +
                  latency / timing.mlp;

        // Dirty L2 victims consume bus bandwidth but are buffered,
        // so they cost no core stall.
        if (l2_result.evictedDirty)
            dram_.access(issue, l2_result.victimAddress);

        // Next-line prefetch: fetch the following block into L2
        // without stalling. It consumes bus bandwidth and may evict;
        // a dirty prefetch victim writes back like any other.
        if (config_.core.nextLinePrefetch) {
            const std::uint64_t next_block_address =
                (op.address / config_.l2.blockBytes + 1) *
                config_.l2.blockBytes;
            const auto prefetch_result =
                l2_.access(next_block_address, false);
            if (!prefetch_result.hit) {
                ++prefetches;
                dram_.access(issue, next_block_address);
                if (prefetch_result.evictedDirty) {
                    dram_.access(issue,
                                 prefetch_result.victimAddress);
                }
            }
        }
    }

    RunResult result;
    result.instructions = trace.instructions - warmup_instructions;
    result.cycles = cycles - warmup_cycles;
    result.ipc =
        result.cycles > 0
            ? static_cast<double>(result.instructions) / result.cycles
            : 0.0;
    result.l1 = l1_.stats();
    result.l2 = l2_.stats();
    result.dram = dram_.stats();
    result.avgDramLatencyCycles = dram_.stats().averageLatency();
    result.deliveredBandwidthGBps = dram_.deliveredBandwidthGBps(
        static_cast<std::uint64_t>(result.cycles));
    result.prefetchesIssued = prefetches;
    return result;
}

} // namespace ref::sim
