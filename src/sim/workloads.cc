#include "workloads.hh"

#include "util/logging.hh"

namespace ref::sim {

namespace {

constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * 1024;

/** Compact row for the catalog table below. */
WorkloadSpec
spec(const char *name, Suite suite, char expected, std::size_t ws_bytes,
     double zipf, double intensity, double stream, double mlp,
     double non_mem_cpi, double burstiness, std::uint64_t seed)
{
    WorkloadSpec w;
    w.name = name;
    w.suite = suite;
    w.expectedClass = expected;
    w.trace.workingSetBytes = ws_bytes;
    w.trace.zipfExponent = zipf;
    w.trace.memIntensity = intensity;
    w.trace.streamFraction = stream;
    w.trace.writeFraction = 0.3;
    w.trace.burstiness = burstiness;
    w.trace.seed = seed;
    w.timing.mlp = mlp;
    w.timing.nonMemCpi = non_mem_cpi;
    return w;
}

/**
 * Parameter rationale (per DESIGN.md): class C entries carry working
 * sets inside the Table 1 L2 sweep with skewed re-use, so misses —
 * and hence IPC — respond steeply to cache capacity; class M entries
 * stream (or exceed the sweep entirely) with high memory intensity
 * and deep MLP, so IPC tracks the bandwidth knob instead. radiosity
 * is compute-bound (tiny working set, low intensity): its IPC is
 * nearly flat, giving the paper's "negligible variance, no trend to
 * capture" low R-squared. string_match saturates the bus at low
 * bandwidths and the core at high ones, a kinked curve Cobb-Douglas
 * fits poorly — the other low-R-squared example.
 */
std::vector<WorkloadSpec>
buildCatalog()
{
    using enum Suite;
    return {
        // --- class C: cache-capacity-elastic ---
        spec("raytrace", Splash2x, 'C', 1536 * KiB, 1.10, 0.14, 0.00,
             1.3, 0.05, 0.05, 101),
        spec("water_spatial", Splash2x, 'C', 1228 * KiB, 1.00, 0.12,
             0.00, 1.4, 0.05, 0.05, 102),
        spec("histogram", Phoenix, 'C', 1024 * KiB, 0.90, 0.16, 0.02,
             1.5, 0.03, 0.05, 103),
        spec("lu_ncb", Splash2x, 'C', 1433 * KiB, 0.90, 0.13, 0.03,
             1.6, 0.05, 0.05, 104),
        spec("linear_regression", Phoenix, 'C', 921 * KiB, 0.90, 0.25,
             0.05, 1.6, 0.02, 0.05, 105),
        // freqmine is deliberately "flat" (low memory activity, much
        // compute): under equal slowdown it is starved below its
        // equal split — the paper's Figure 12 violation.
        spec("freqmine", Parsec, 'C', 700 * KiB, 0.85, 0.04, 0.03,
             1.7, 0.45, 0.05, 106),
        spec("water_nsquared", Splash2x, 'C', 819 * KiB, 0.85, 0.12,
             0.05, 1.7, 0.05, 0.05, 107),
        spec("bodytrack", Parsec, 'C', 716 * KiB, 0.80, 0.11, 0.06,
             1.8, 0.06, 0.05, 108),
        spec("radiosity", Splash2x, 'C', 224 * KiB, 1.10, 0.04, 0.00,
             1.0, 0.80, 0.05, 109),
        spec("word_count", Phoenix, 'C', 819 * KiB, 0.80, 0.15, 0.08,
             1.8, 0.03, 0.05, 110),
        spec("cholesky", Splash2x, 'C', 1024 * KiB, 0.75, 0.12, 0.08,
             2.0, 0.06, 0.05, 111),
        spec("volrend", Splash2x, 'C', 614 * KiB, 0.80, 0.10, 0.08,
             1.9, 0.07, 0.05, 112),
        spec("swaptions", Parsec, 'C', 512 * KiB, 0.85, 0.08, 0.05,
             1.8, 0.10, 0.05, 113),
        spec("fmm", Splash2x, 'C', 1024 * KiB, 0.70, 0.12, 0.10, 2.2,
             0.05, 0.05, 114),
        spec("barnes", Splash2x, 'C', 1228 * KiB, 0.70, 0.13, 0.12,
             2.2, 0.05, 0.05, 115),
        spec("ferret", Parsec, 'C', 1024 * KiB, 0.65, 0.15, 0.15, 2.5,
             0.04, 0.05, 116),
        spec("x264", Parsec, 'C', 819 * KiB, 0.60, 0.14, 0.18, 3.0,
             0.04, 0.05, 117),
        spec("blackscholes", Parsec, 'C', 614 * KiB, 0.60, 0.12, 0.20,
             2.8, 0.05, 0.05, 118),
        spec("fft", Splash2x, 'C', 1228 * KiB, 0.55, 0.13, 0.12, 2.5,
             0.04, 0.05, 119),
        spec("streamcluster", Parsec, 'C', 1024 * KiB, 0.60, 0.14,
             0.15, 2.8, 0.03, 0.05, 120),
        // --- class M: memory-bandwidth-elastic ---
        // canneal: bursty but overall low memory activity over a
        // huge working set — bandwidth-classed yet "flat" enough
        // that equal slowdown hands it less than half of both
        // resources (the paper's Figure 11 violation).
        spec("canneal", Parsec, 'M', 12 * MiB, 0.45, 0.014, 0.25, 6.0,
             1.30, 0.30, 121),
        spec("rtview", Parsec, 'M', 6 * MiB, 0.50, 0.10, 0.35, 4.5,
             0.05, 0.20, 122),
        spec("lu_cb", Splash2x, 'M', 4 * MiB, 0.40, 0.12, 0.40, 5.0,
             0.03, 0.20, 123),
        spec("fluidanimate", Parsec, 'M', 3 * MiB, 0.35, 0.12, 0.55,
             5.5, 0.03, 0.20, 124),
        spec("facesim", Parsec, 'M', 4 * MiB, 0.30, 0.13, 0.65, 6.0,
             0.03, 0.20, 125),
        spec("dedup", Parsec, 'M', 2 * MiB, 0.30, 0.14, 0.75, 6.5,
             0.02, 0.20, 126),
        spec("string_match", Phoenix, 'M', 1 * MiB, 0.30, 0.008, 0.95,
             3.0, 0.20, 0.20, 127),
        spec("ocean_cp", Splash2x, 'M', 8 * MiB, 0.30, 0.15, 0.60,
             6.0, 0.03, 0.20, 128),
    };
}

std::vector<WorkloadMix>
buildFourCoreMixes()
{
    return {
        {"WD1",
         {"histogram", "linear_regression", "water_nsquared",
          "bodytrack"},
         "4C"},
        {"WD2", {"radiosity", "fmm", "facesim", "string_match"},
         "2C-2M"},
        {"WD3", {"lu_cb", "fluidanimate", "facesim", "dedup"}, "4M"},
        {"WD4", {"fft", "streamcluster", "canneal", "word_count"},
         "3C-1M"},
        {"WD5",
         {"streamcluster", "facesim", "dedup", "string_match"},
         "1C-3M"},
    };
}

std::vector<WorkloadMix>
buildEightCoreMixes()
{
    return {
        {"WD6",
         {"histogram", "linear_regression", "water_nsquared",
          "bodytrack", "freqmine", "word_count", "x264", "dedup"},
         "7C-1M"},
        {"WD7",
         {"histogram", "canneal", "rtview", "bodytrack", "radiosity",
          "word_count", "linear_regression", "water_nsquared"},
         "6C-2M"},
        {"WD8",
         {"radiosity", "word_count", "word_count", "canneal", "rtview",
          "freqmine", "x264", "dedup"},
         "5C-3M"},
        {"WD9",
         {"radiosity", "radiosity", "word_count", "canneal", "rtview",
          "fmm", "facesim", "string_match"},
         "4C-4M"},
        {"WD10",
         {"water_nsquared", "barnes", "ferret", "lu_cb", "lu_cb",
          "fluidanimate", "facesim", "dedup"},
         "3C-5M"},
    };
}

} // namespace

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> catalog = buildCatalog();
    return catalog;
}

const WorkloadSpec &
workloadByName(const std::string &name)
{
    for (const auto &workload : allWorkloads()) {
        if (workload.name == name)
            return workload;
    }
    REF_FATAL("unknown workload '" << name << "'");
}

const std::vector<WorkloadMix> &
table2FourCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = buildFourCoreMixes();
    return mixes;
}

const std::vector<WorkloadMix> &
table2EightCoreMixes()
{
    static const std::vector<WorkloadMix> mixes = buildEightCoreMixes();
    return mixes;
}

std::vector<WorkloadMix>
table2AllMixes()
{
    std::vector<WorkloadMix> mixes = table2FourCoreMixes();
    const auto &eight = table2EightCoreMixes();
    mixes.insert(mixes.end(), eight.begin(), eight.end());
    return mixes;
}

} // namespace ref::sim
