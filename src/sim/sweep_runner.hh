/**
 * @file
 * Parallel profiling sweep engine.
 *
 * The REF input pipeline simulates every (workload, cache capacity,
 * memory bandwidth) cell of the Table 1 grid to build the profiles
 * the Cobb-Douglas fitter consumes. Cells are independent — each one
 * replays the same immutable trace on its own CmpSystem — so the
 * SweepRunner fans them out over a work-stealing thread pool.
 *
 * Determinism: the grid is materialised up front and every cell
 * writes its pre-assigned slot, so result order never depends on
 * scheduling; the trace is generated once per workload from the
 * workload's own seed; and each cell carries a deterministic RNG
 * seed derived from hash(trace seed, cache bytes, bandwidth), never
 * from execution order, so any stochastic timing component stays
 * bit-identical between serial and parallel sweeps. `jobs=1` and
 * `jobs=N` produce byte-identical profile tables.
 *
 * A bounded in-memory LRU cache keyed by (trace id, config id)
 * dedupes repeated cells, so mechanisms that re-profile the same
 * workload on overlapping grids (figure harnesses, online
 * re-profiling) pay for each distinct simulation once. An optional
 * disk tier (SweepOptions::cacheDir) persists each distinct cell as
 * one CRC32-framed record file — the same util/record_io.hh framing
 * the svc journal uses — so separate runs and separate processes
 * share simulation work; corrupt or torn entries are detected by the
 * frame CRC and silently recomputed.
 */

#ifndef REF_SIM_SWEEP_RUNNER_HH
#define REF_SIM_SWEEP_RUNNER_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fitting.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"
#include "util/thread_pool.hh"

namespace ref::sim {

/** One point of the sweep. */
struct SweepPoint
{
    double bandwidthGBps = 0;
    double cacheMB = 0;
    double ipc = 0;
    /**
     * Deterministic per-cell RNG seed, a pure function of the
     * workload's trace seed and the cell's (cache, bandwidth)
     * configuration — see sweepCellSeed().
     */
    std::uint64_t rngSeed = 0;
    RunResult detail;
};

/** Identity of one sweep cell: which trace on which machine. */
struct SweepCellKey
{
    std::uint64_t traceId = 0;   //!< Trace parameters + length.
    std::uint64_t configId = 0;  //!< Platform + timing + warmup.

    bool operator==(const SweepCellKey &) const = default;
};

struct SweepCellKeyHash
{
    std::size_t operator()(const SweepCellKey &key) const;
};

/** Hit/miss counters for the profile cell cache. */
struct ProfileCacheStats
{
    std::size_t hits = 0;       //!< Memory-tier hits.
    std::size_t misses = 0;     //!< Memory-tier misses.
    std::size_t evictions = 0;  //!< Memory-tier LRU evictions.
    std::size_t diskHits = 0;       //!< Cells loaded from cacheDir.
    std::size_t diskWrites = 0;     //!< Cells persisted to cacheDir.
    std::size_t diskBadEntries = 0; //!< Corrupt/mismatched entries
                                    //!< ignored and recomputed.
};

/**
 * Bounded, thread-safe LRU cache of simulated sweep cells. Keys are
 * pure functions of the simulation inputs, so a hit is bit-identical
 * to re-running the cell.
 */
class ProfileCache
{
  public:
    /** @param capacity Maximum cached cells; 0 disables caching. */
    explicit ProfileCache(std::size_t capacity);

    /** Look up a cell; promotes it to most-recently-used on hit. */
    bool lookup(const SweepCellKey &key, SweepPoint &point);

    /** Insert a cell, evicting the least-recently-used as needed. */
    void insert(const SweepCellKey &key, const SweepPoint &point);

    ProfileCacheStats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

    /** Disk-tier counters, maintained by the owning SweepRunner so
     *  both tiers report through one ProfileCacheStats. */
    void noteDiskHit();
    void noteDiskWrite();
    void noteDiskBadEntry();

  private:
    using LruList = std::list<std::pair<SweepCellKey, SweepPoint>>;

    std::size_t capacity_;
    mutable std::mutex mutex_;
    LruList lru_;  //!< Front = most recently used.
    std::unordered_map<SweepCellKey, LruList::iterator,
                       SweepCellKeyHash>
        index_;
    ProfileCacheStats stats_;
};

/** Tuning knobs for the sweep engine. */
struct SweepOptions
{
    /**
     * Worker threads for the cell fan-out; 0 defers to
     * ThreadPool::defaultJobs() (REF_JOBS or the hardware), 1 runs
     * strictly serially on the calling thread.
     */
    std::size_t jobs = 0;
    /** Cell-cache capacity in cells; 0 disables deduplication. */
    std::size_t cacheCells = 4096;
    /**
     * Directory for the persistent cell cache; empty disables the
     * disk tier. Each distinct (trace id, config id) cell is one
     * CRC32-framed file, written atomically (tmp + rename), so
     * concurrent runners — even in different processes — can share
     * a directory: corrupt or torn entries fail the frame CRC and
     * are recomputed, never trusted.
     */
    std::string cacheDir{};
};

/**
 * Deterministic RNG seed for one sweep cell, derived only from the
 * trace seed and the cell configuration (SplitMix64-mixed), never
 * from execution order.
 */
std::uint64_t sweepCellSeed(std::uint64_t trace_seed,
                            double bandwidth_gbps,
                            std::size_t cache_bytes);

/**
 * Simulate one sweep cell. Pure: every input is by const reference
 * or value, the CmpSystem is constructed locally, and no global
 * state is touched, so cells can run on any thread in any order.
 */
SweepPoint simulateSweepCell(const Trace &trace,
                             const PlatformConfig &config,
                             const TimingParams &timing,
                             double warmup_fraction,
                             std::uint64_t seed);

/** Convert sweep points to the fitter's profile format. */
core::PerformanceProfile
toPerformanceProfile(const std::vector<SweepPoint> &points);

/**
 * Fans profile sweeps out across a thread pool. Thread-safe: one
 * runner may serve concurrent sweeps, and all of them share the
 * cell cache.
 */
class SweepRunner
{
  public:
    /**
     * @param base Platform whose L2 size and DRAM bandwidth the
     *        sweep overrides; everything else (core, L1) is held.
     * @param trace_ops Memory operations simulated per point (grown
     *        to cover 4x the working set, as before).
     */
    explicit SweepRunner(PlatformConfig base,
                         std::size_t trace_ops = 200000,
                         SweepOptions options = {});

    /** Profile one workload across the full 5 x 5 Table 1 grid. */
    std::vector<SweepPoint> sweep(const WorkloadSpec &workload);

    /** Profile across explicit (bandwidth GB/s, cache bytes) axes. */
    std::vector<SweepPoint>
    sweep(const WorkloadSpec &workload,
          const std::vector<double> &bandwidths,
          const std::vector<std::size_t> &cache_sizes);

    /**
     * Profile many workloads over the Table 1 grid in one batch:
     * trace generation and all workloads' cells share the pool, so
     * the grid is (workloads x cells) wide instead of draining one
     * workload at a time.
     */
    std::vector<std::vector<SweepPoint>>
    sweepMany(const std::vector<WorkloadSpec> &workloads);

    /** Sweep and fit in one step. */
    core::CobbDouglasFit profileAndFit(const WorkloadSpec &workload);

    /** Resolved worker count (1 = serial). */
    std::size_t jobs() const { return jobs_; }

    std::size_t traceOps() const { return traceOps_; }
    const PlatformConfig &base() const { return base_; }
    ProfileCacheStats cacheStats() const { return cache_.stats(); }

  private:
    /** REF_INFORM one cache-effectiveness line at the end of a sweep:
     *  this run's hit/miss/eviction deltas plus lifetime totals. */
    void logCacheSummary(const char *scope, std::size_t cells,
                         const ProfileCacheStats &before) const;
    Trace generateTrace(const WorkloadSpec &workload) const;
    SweepPoint runCell(const WorkloadSpec &workload,
                       const Trace &trace, double bandwidth,
                       std::size_t cache_bytes);
    std::string cellPath(const SweepCellKey &key) const;
    bool loadCellFromDisk(const SweepCellKey &key, SweepPoint &point);
    void storeCellToDisk(const SweepCellKey &key,
                         const SweepPoint &point);
    ThreadPool &pool();

    PlatformConfig base_;
    std::size_t traceOps_;
    std::size_t jobs_;
    ProfileCache cache_;
    std::string cacheDir_;   //!< Empty: disk tier disabled.
    std::mutex diskMutex_;   //!< Serialises disk-tier writes.
    std::mutex poolMutex_;              //!< Guards pool_ creation.
    std::unique_ptr<ThreadPool> pool_;  //!< Lazily built when jobs_ > 1.
};

} // namespace ref::sim

#endif // REF_SIM_SWEEP_RUNNER_HH
