/**
 * @file
 * The 28-benchmark catalog: synthetic stand-ins for PARSEC,
 * SPLASH-2x, and Phoenix MapReduce workloads (paper Section 5.1),
 * plus the Table 2 workload mixes WD1-WD10.
 *
 * Each entry's trace/timing parameters are tuned so the fitted
 * Cobb-Douglas elasticities land in the paper's class: C (cache,
 * alpha_cache > 0.5) or M (memory bandwidth, alpha_mem > 0.5). The
 * catalog follows Table 2's arithmetic where the paper's prose
 * disagrees with it (streamcluster: see DESIGN.md).
 */

#ifndef REF_SIM_WORKLOADS_HH
#define REF_SIM_WORKLOADS_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/trace.hh"

namespace ref::sim {

/** Benchmark suite of origin. */
enum class Suite { Parsec, Splash2x, Phoenix };

/** One synthetic benchmark. */
struct WorkloadSpec
{
    std::string name;
    Suite suite;
    TraceParams trace;
    TimingParams timing;
    /** Paper classification: 'C' (cache) or 'M' (bandwidth). */
    char expectedClass = 'C';
};

/** All 28 benchmarks in the paper's Figure 8a order. */
const std::vector<WorkloadSpec> &allWorkloads();

/** Look up a benchmark by name; throws FatalError if unknown. */
const WorkloadSpec &workloadByName(const std::string &name);

/** A Table 2 multiprogrammed mix. */
struct WorkloadMix
{
    std::string name;          //!< e.g. "WD1".
    std::vector<std::string> members;  //!< Benchmark names (repeats ok).
    std::string composition;   //!< e.g. "4C" or "3C-1M".
};

/** WD1-WD5: the 4-core mixes of Figure 13. */
const std::vector<WorkloadMix> &table2FourCoreMixes();

/** WD6-WD10: the 8-core mixes of Figure 14. */
const std::vector<WorkloadMix> &table2EightCoreMixes();

/** All ten Table 2 mixes. */
std::vector<WorkloadMix> table2AllMixes();

} // namespace ref::sim

#endif // REF_SIM_WORKLOADS_HH
