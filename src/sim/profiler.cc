#include "profiler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ref::sim {

Profiler::Profiler(PlatformConfig base, std::size_t trace_ops)
    : base_(base), traceOps_(trace_ops)
{
    REF_REQUIRE(traceOps_ > 0, "need a positive trace length");
}

std::vector<SweepPoint>
Profiler::sweep(const WorkloadSpec &workload) const
{
    std::vector<std::size_t> cache_sizes = table1CacheSizes();
    std::vector<double> bandwidths = table1Bandwidths();
    return sweep(workload, bandwidths, cache_sizes);
}

std::vector<SweepPoint>
Profiler::sweep(const WorkloadSpec &workload,
                const std::vector<double> &bandwidths,
                const std::vector<std::size_t> &cache_sizes) const
{
    REF_REQUIRE(!bandwidths.empty() && !cache_sizes.empty(),
                "sweep needs at least one configuration");

    // One trace per workload, replayed on every configuration so
    // the only variation across points is architectural. The trace
    // must dwarf the working set or cold misses drown capacity
    // misses; the leading 35% only warms the caches.
    const std::size_t working_set_blocks =
        workload.trace.workingSetBytes / base_.l2.blockBytes;
    const std::size_t ops =
        std::max(traceOps_, 4 * working_set_blocks);
    constexpr double warmup_fraction = 0.35;

    TraceGenerator generator(workload.trace, base_.l2.blockBytes);
    const Trace trace = generator.generate(ops);

    std::vector<SweepPoint> points;
    points.reserve(bandwidths.size() * cache_sizes.size());
    for (double bandwidth : bandwidths) {
        for (std::size_t cache_bytes : cache_sizes) {
            PlatformConfig config = base_;
            config.l2.sizeBytes = cache_bytes;
            config.dram.bandwidthGBps = bandwidth;

            CmpSystem system(config);
            SweepPoint point;
            point.bandwidthGBps = bandwidth;
            point.cacheMB =
                static_cast<double>(cache_bytes) / (1024.0 * 1024.0);
            point.detail =
                system.run(trace, workload.timing, warmup_fraction);
            point.ipc = point.detail.ipc;
            points.push_back(point);
        }
    }
    return points;
}

core::PerformanceProfile
Profiler::toPerformanceProfile(const std::vector<SweepPoint> &points)
{
    core::PerformanceProfile profile;
    profile.reserve(points.size());
    for (const auto &point : points) {
        profile.push_back(core::ProfilePoint{
            {point.bandwidthGBps, point.cacheMB}, point.ipc});
    }
    return profile;
}

core::CobbDouglasFit
Profiler::profileAndFit(const WorkloadSpec &workload) const
{
    return core::fitCobbDouglas(
        toPerformanceProfile(sweep(workload)));
}

} // namespace ref::sim
