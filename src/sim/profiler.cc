#include "profiler.hh"

namespace ref::sim {

Profiler::Profiler(PlatformConfig base, std::size_t trace_ops,
                   SweepOptions options)
    : runner_(
          std::make_shared<SweepRunner>(base, trace_ops, options))
{}

std::vector<SweepPoint>
Profiler::sweep(const WorkloadSpec &workload) const
{
    return runner_->sweep(workload);
}

std::vector<SweepPoint>
Profiler::sweep(const WorkloadSpec &workload,
                const std::vector<double> &bandwidths,
                const std::vector<std::size_t> &cache_sizes) const
{
    return runner_->sweep(workload, bandwidths, cache_sizes);
}

core::PerformanceProfile
Profiler::toPerformanceProfile(const std::vector<SweepPoint> &points)
{
    return sim::toPerformanceProfile(points);
}

core::CobbDouglasFit
Profiler::profileAndFit(const WorkloadSpec &workload) const
{
    return runner_->profileAndFit(workload);
}

} // namespace ref::sim
