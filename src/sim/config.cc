#include "config.hh"

namespace ref::sim {

PlatformConfig
PlatformConfig::table1()
{
    PlatformConfig config;
    config.core = CoreConfig{3.0, 4, 16};
    config.l1 = CacheConfig{32 * 1024, 4, 64, 2};
    config.l2 = CacheConfig{2 * 1024 * 1024, 8, 64, 20};
    config.dram = DramConfig{};
    return config;
}

std::vector<std::size_t>
table1CacheSizes()
{
    return {128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024,
            2 * 1024 * 1024};
}

std::vector<double>
table1Bandwidths()
{
    return {0.8, 1.6, 3.2, 6.4, 12.8};
}

} // namespace ref::sim
