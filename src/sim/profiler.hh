/**
 * @file
 * Performance profiling over the Table 1 sweep (paper Section 5.1):
 * 25 architectures spanning five L2 capacities and five memory
 * bandwidths, producing the profiles the Cobb-Douglas fitter
 * consumes.
 *
 * The Profiler is a thin facade over the parallel SweepRunner
 * (sim/sweep_runner.hh): cell simulation is a pure function of
 * (trace, config, seed), cells fan out across a work-stealing
 * thread pool, and a bounded cache dedupes repeated cells. Copies
 * of a Profiler share one runner, and with it the cell cache.
 *
 * Resource convention throughout the repository: resource 0 is
 * memory bandwidth in GB/s, resource 1 is cache capacity in MB —
 * matching the paper's u = x^{a_x} y^{a_y} with x bandwidth and y
 * cache.
 */

#ifndef REF_SIM_PROFILER_HH
#define REF_SIM_PROFILER_HH

#include <memory>
#include <vector>

#include "core/fitting.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "sim/workloads.hh"

namespace ref::sim {

/** Sweeps workloads across cache-size/bandwidth configurations. */
class Profiler
{
  public:
    /**
     * @param base Platform whose L2 size and DRAM bandwidth the
     *        sweep overrides; everything else (core, L1) is held.
     * @param trace_ops Memory operations simulated per point. The
     *        trace is generated once per workload and replayed on
     *        every configuration.
     * @param options Parallelism and caching knobs; the default
     *        honours REF_JOBS and falls back to the hardware
     *        concurrency.
     */
    explicit Profiler(PlatformConfig base,
                      std::size_t trace_ops = 200000,
                      SweepOptions options = {});

    /** Profile one workload across the full 5 x 5 Table 1 grid. */
    std::vector<SweepPoint> sweep(const WorkloadSpec &workload) const;

    /**
     * Profile across explicit (bandwidth GB/s, cache bytes) lists;
     * used by enforcement experiments that need off-grid points.
     */
    std::vector<SweepPoint> sweep(
        const WorkloadSpec &workload,
        const std::vector<double> &bandwidths,
        const std::vector<std::size_t> &cache_sizes) const;

    /** Convert sweep points to the fitter's profile format. */
    static core::PerformanceProfile toPerformanceProfile(
        const std::vector<SweepPoint> &points);

    /** Sweep and fit in one step. */
    core::CobbDouglasFit profileAndFit(
        const WorkloadSpec &workload) const;

    /** Resolved worker count (1 = serial). */
    std::size_t jobs() const { return runner_->jobs(); }

    /** The shared sweep engine behind this profiler. */
    SweepRunner &runner() const { return *runner_; }

  private:
    std::shared_ptr<SweepRunner> runner_;
};

} // namespace ref::sim

#endif // REF_SIM_PROFILER_HH
