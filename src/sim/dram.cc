#include "dram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ref::sim {

DramModel::DramModel(const DramConfig &config, const CoreConfig &core,
                     std::size_t block_bytes)
    : config_(config), clockGHz_(core.clockGHz), blockBytes_(block_bytes)
{
    REF_REQUIRE(config_.bandwidthGBps > 0, "bandwidth must be positive");
    REF_REQUIRE(config_.channels > 0, "need at least one channel");
    REF_REQUIRE(config_.banks > 0, "need at least one bank");
    REF_REQUIRE(config_.rowBytes >= blockBytes_,
                "row buffer smaller than a block");
    REF_REQUIRE(clockGHz_ > 0, "core clock must be positive");

    // One block over a channel's data bus: the configured bandwidth
    // is the aggregate, so each channel carries its share.
    const double channel_bandwidth =
        config_.bandwidthGBps / config_.channels;
    const double transfer_ns =
        static_cast<double>(blockBytes_) / channel_bandwidth;
    transferCycles_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               transfer_ns * clockGHz_)));
    accessCycles_ = static_cast<std::uint64_t>(
        std::llround(config_.accessNs * clockGHz_));
    casCycles_ = static_cast<std::uint64_t>(
        std::llround(config_.casNs * clockGHz_));
    rowCycleCycles_ = static_cast<std::uint64_t>(
        std::llround(config_.rowCycleNs * clockGHz_));
    banks_.assign(
        static_cast<std::size_t>(config_.channels) * config_.banks,
        Bank{});
    busFreeAt_.assign(config_.channels, 0);
}

std::uint64_t
DramModel::access(std::uint64_t issue_cycle, std::uint64_t address)
{
    ++stats_.requests;

    const std::uint64_t block = address / blockBytes_;
    const std::size_t channel =
        static_cast<std::size_t>(block % config_.channels);
    const std::uint64_t row = address / config_.rowBytes;
    // Address mapping follows the page policy, as real controllers
    // do: closed page interleaves banks at block granularity (the
    // Table 1 round-robin, maximizing bank parallelism); open page
    // keeps each row inside one bank so that consecutive blocks can
    // hit the open row.
    const std::size_t bank_in_channel =
        config_.pagePolicy == PagePolicy::Closed
            ? static_cast<std::size_t>(
                  (block / config_.channels) % config_.banks)
            : static_cast<std::size_t>(row % config_.banks);
    Bank &bank = banks_[channel * config_.banks + bank_in_channel];

    // Controller pipeline, then wait for the bank.
    const std::uint64_t at_controller =
        issue_cycle + config_.controllerCycles;

    std::uint64_t data_ready;
    if (config_.pagePolicy == PagePolicy::Open &&
        bank.openRow == row) {
        // Row hit: CAS commands pipeline under earlier transfers, so
        // a hit never serializes on the bank — only the CAS latency
        // and the shared bus apply.
        data_ready = at_controller + casCycles_;
        ++stats_.rowHits;
    } else {
        const std::uint64_t bank_ready =
            std::max(at_controller, bank.freeAt);
        data_ready = bank_ready + accessCycles_;
        if (config_.pagePolicy == PagePolicy::Open) {
            // Row miss: precharge + activate occupy the bank, then
            // the new row stays open.
            bank.freeAt = data_ready;
            bank.openRow = row;
        } else {
            // Closed page: precharge keeps the bank busy for tRC.
            bank.freeAt = bank_ready + rowCycleCycles_;
            bank.openRow = ~std::uint64_t{0};
        }
    }

    const std::uint64_t bus_start =
        std::max(data_ready, busFreeAt_[channel]);
    const std::uint64_t completion = bus_start + transferCycles_;
    busFreeAt_[channel] = bus_start + transferCycles_;

    ++stats_.blocksTransferred;
    stats_.busBusyCycles += transferCycles_;
    stats_.totalLatencyCycles += completion - issue_cycle;
    return completion;
}

double
DramModel::deliveredBandwidthGBps(std::uint64_t elapsed_cycles) const
{
    if (elapsed_cycles == 0)
        return 0.0;
    const double bytes = static_cast<double>(
        stats_.blocksTransferred * blockBytes_);
    const double ns = static_cast<double>(elapsed_cycles) / clockGHz_;
    return bytes / ns;
}

} // namespace ref::sim
