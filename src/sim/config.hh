/**
 * @file
 * Platform configuration (paper Table 1).
 *
 * 3 GHz out-of-order cores, 4-wide issue/commit; 32 KB 4-way L1;
 * L2 swept over {128 KB, 256 KB, 512 KB, 1 MB, 2 MB}; single-channel
 * DRAM swept over {0.8, 1.6, 3.2, 6.4, 12.8} GB/s with a closed-page
 * controller.
 */

#ifndef REF_SIM_CONFIG_HH
#define REF_SIM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ref::sim {

/** One cache level. */
struct CacheConfig
{
    std::size_t sizeBytes = 0;
    std::size_t associativity = 0;
    std::size_t blockBytes = 64;
    unsigned latencyCycles = 0;   //!< Hit latency.
};

/** DRAM row-buffer management policy. */
enum class PagePolicy
{
    Closed,  //!< Precharge after every access (Table 1's policy).
    Open,    //!< Keep rows open; hits skip the activate.
};

/** The DRAM channel(s) and controller. */
struct DramConfig
{
    double bandwidthGBps = 12.8;  //!< Peak bandwidth across channels.
    unsigned channels = 1;        //!< Independent channels.
    unsigned banks = 8;           //!< Banks per channel.
    double rowCycleNs = 45.0;     //!< tRC: closed-page bank busy time.
    double accessNs = 26.0;       //!< Activate + CAS before data.
    double casNs = 13.0;          //!< CAS only (open-page row hit).
    unsigned controllerCycles = 10;  //!< Queue/controller overhead.
    PagePolicy pagePolicy = PagePolicy::Closed;
    std::size_t rowBytes = 2048;  //!< Row-buffer reach per bank.
};

/** The out-of-order core timing model. */
struct CoreConfig
{
    double clockGHz = 3.0;
    unsigned issueWidth = 4;
    unsigned missQueueSize = 16;  //!< MSHRs: max outstanding misses.
    /**
     * Next-line prefetcher at the L2: on a demand miss, also fetch
     * the following block. Hides streaming latency at the cost of
     * extra bus traffic. Off in the Table 1 configuration.
     */
    bool nextLinePrefetch = false;
};

/** A full single-core platform. */
struct PlatformConfig
{
    CoreConfig core;
    CacheConfig l1;
    CacheConfig l2;
    DramConfig dram;

    /** Cycles per nanosecond for this core clock. */
    double cyclesPerNs() const { return core.clockGHz; }

    /** Table 1 defaults with the largest L2 and bandwidth. */
    static PlatformConfig table1();
};

/** The five L2 capacities of the Table 1 sweep, in bytes. */
std::vector<std::size_t> table1CacheSizes();

/** The five DRAM bandwidths of the Table 1 sweep, in GB/s. */
std::vector<double> table1Bandwidths();

} // namespace ref::sim

#endif // REF_SIM_CONFIG_HH
