/**
 * @file
 * Set-associative cache with true LRU replacement.
 *
 * Write-back, write-allocate. True LRU (not an approximation) keeps
 * miss-rate curves monotone in capacity, which is what makes the
 * Cobb-Douglas fits well behaved; the fully associative
 * configuration additionally satisfies the LRU stack-inclusion
 * property, pinned by tests.
 */

#ifndef REF_SIM_CACHE_HH
#define REF_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace ref::sim {

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evictedDirty = false;  //!< A dirty victim must be written back.
    std::uint64_t victimAddress = 0;  //!< Valid when evictedDirty.
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** A single cache level. */
class Cache
{
  public:
    /**
     * @pre size divisible by block * associativity; block a power
     *      of two.
     */
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p address; on a miss, fill it (allocating on writes
     * too) and report the evicted victim if dirty.
     *
     * @param way_mask Restricts replacement to the ways whose bits
     *        are set (used by way-partitioning); lookups still hit
     *        in any way. 0 means "all ways".
     */
    CacheAccessResult access(std::uint64_t address, bool is_write,
                             std::uint64_t way_mask = 0);

    /** Invalidate everything (drops dirty data; stats retained). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    std::size_t sets() const { return sets_; }
    std::size_t associativity() const { return config_.associativity; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t blockNumber(std::uint64_t address) const;
    std::size_t setIndex(std::uint64_t block) const;

    CacheConfig config_;
    std::size_t sets_;
    unsigned blockShift_;
    std::vector<Line> lines_;   //!< sets_ x associativity, row-major.
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace ref::sim

#endif // REF_SIM_CACHE_HH
