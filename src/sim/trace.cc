#include "trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace ref::sim {

namespace {

/** Address-space bases keeping the two components disjoint. */
constexpr std::uint64_t kReuseBase = 0x1000'0000ULL;
constexpr std::uint64_t kStreamBase = 0x8000'0000ULL;

/**
 * Each seed gets its own 4 GiB address window, so co-scheduled
 * workloads (distinct seeds) never share cache blocks — they model
 * separate processes. The offset is a multiple of every bank/set
 * stride in use, leaving single-workload behaviour untouched.
 */
constexpr std::uint64_t kSeedWindow = 0x1'0000'0000ULL;

} // namespace

TraceGenerator::TraceGenerator(const TraceParams &params,
                               std::size_t block_bytes)
    : params_(params), blockBytes_(block_bytes),
      workingSetBlocks_(
          std::max<std::size_t>(1, params.workingSetBytes / block_bytes)),
      rng_(params.seed),
      zipf_(workingSetBlocks_, params.zipfExponent),
      streamPointer_(kStreamBase + params.seed * kSeedWindow)
{
    REF_REQUIRE(block_bytes > 0, "block size must be positive");
    REF_REQUIRE(params_.memIntensity > 0 && params_.memIntensity <= 1,
                "memIntensity must be in (0, 1], got "
                    << params_.memIntensity);
    REF_REQUIRE(params_.streamFraction >= 0 &&
                    params_.streamFraction <= 1,
                "streamFraction must be in [0, 1]");
    REF_REQUIRE(params_.writeFraction >= 0 &&
                    params_.writeFraction <= 1,
                "writeFraction must be in [0, 1]");
    REF_REQUIRE(params_.burstiness >= 0 && params_.burstiness < 1,
                "burstiness must be in [0, 1)");
}

std::uint64_t
TraceGenerator::reuseAddress()
{
    // Zipf rank over the working set, scrambled so popular blocks
    // spread across the address space (and hence across cache sets)
    // instead of clustering at its start. Multiplying by a prime and
    // reducing modulo the working-set size is a bijection whenever
    // the size is not a multiple of the prime — always true for
    // realistic working sets, so no two ranks alias.
    const std::size_t rank = zipf_(rng_);
    const std::size_t scrambled =
        (rank * 2654435761ULL) % workingSetBlocks_;
    return kReuseBase + params_.seed * kSeedWindow +
           scrambled * blockBytes_;
}

std::uint64_t
TraceGenerator::streamAddress()
{
    // One access per block: the post-L1 view of a sequential sweep.
    const std::uint64_t address = streamPointer_;
    streamPointer_ += blockBytes_;
    return address;
}

std::uint32_t
TraceGenerator::nextGap()
{
    // Mean gap chosen so ops / (ops + gaps) == memIntensity.
    const double mean_gap = 1.0 / params_.memIntensity - 1.0;
    if (mean_gap <= 0)
        return 0;
    if (params_.burstiness > 0 && rng_.bernoulli(params_.burstiness))
        return 0;
    // Remaining gaps are exponential with a compensated mean so the
    // overall average is preserved despite the zero-gap bursts.
    const double compensated = mean_gap / (1.0 - params_.burstiness);
    const double gap = rng_.exponential(1.0 / compensated);
    return static_cast<std::uint32_t>(std::min(gap, 1e6));
}

Trace
TraceGenerator::generate(std::size_t operations)
{
    Trace trace;
    trace.ops.reserve(operations);
    for (std::size_t n = 0; n < operations; ++n) {
        MemOp op;
        const bool streaming =
            params_.streamFraction > 0 &&
            rng_.bernoulli(params_.streamFraction);
        op.address = streaming ? streamAddress() : reuseAddress();
        op.isWrite = rng_.bernoulli(params_.writeFraction);
        op.gapInstructions = nextGap();
        trace.instructions += 1 + op.gapInstructions;
        trace.ops.push_back(op);
    }
    return trace;
}

} // namespace ref::sim
