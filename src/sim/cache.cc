#include "cache.hh"

#include "util/logging.hh"
#include "util/math.hh"

namespace ref::sim {

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    REF_REQUIRE(config_.blockBytes > 0 && isPowerOfTwo(config_.blockBytes),
                "block size must be a power of two, got "
                    << config_.blockBytes);
    REF_REQUIRE(config_.associativity > 0, "associativity must be "
                                           "positive");
    REF_REQUIRE(config_.sizeBytes > 0, "cache size must be positive");
    const std::size_t line_capacity =
        config_.blockBytes * config_.associativity;
    REF_REQUIRE(config_.sizeBytes % line_capacity == 0,
                "cache size " << config_.sizeBytes
                    << " not divisible by block*associativity "
                    << line_capacity);

    sets_ = config_.sizeBytes / line_capacity;
    blockShift_ = log2Exact(config_.blockBytes);
    lines_.resize(sets_ * config_.associativity);
}

std::uint64_t
Cache::blockNumber(std::uint64_t address) const
{
    return address >> blockShift_;
}

std::size_t
Cache::setIndex(std::uint64_t block) const
{
    return static_cast<std::size_t>(block % sets_);
}

CacheAccessResult
Cache::access(std::uint64_t address, bool is_write,
              std::uint64_t way_mask)
{
    ++stats_.accesses;
    ++useClock_;

    const std::uint64_t block = blockNumber(address);
    const std::size_t set = setIndex(block);
    Line *const set_lines = &lines_[set * config_.associativity];

    CacheAccessResult result;

    // Lookup may hit in any way regardless of the partition mask.
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        Line &line = set_lines[way];
        if (line.valid && line.tag == block) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            result.hit = true;
            ++stats_.hits;
            return result;
        }
    }

    // Miss: pick the LRU victim among the allowed ways.
    ++stats_.misses;
    const std::uint64_t allowed =
        way_mask == 0 ? ~std::uint64_t{0} : way_mask;
    Line *victim = nullptr;
    for (std::size_t way = 0; way < config_.associativity; ++way) {
        if (!(allowed & (std::uint64_t{1} << way)))
            continue;
        Line &line = set_lines[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lastUse < victim->lastUse)
            victim = &line;
    }
    REF_REQUIRE(victim != nullptr,
                "way mask " << way_mask
                    << " selects no way in a cache with associativity "
                    << config_.associativity);

    if (victim->valid && victim->dirty) {
        result.evictedDirty = true;
        result.victimAddress = victim->tag << blockShift_;
        ++stats_.writebacks;
    }

    victim->valid = true;
    victim->tag = block;
    victim->lastUse = useClock_;
    victim->dirty = is_write;
    return result;
}

void
Cache::flush()
{
    for (Line &line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace ref::sim
