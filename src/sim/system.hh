/**
 * @file
 * Single-core CMP system: OOO core timing + L1 + L2 + DRAM.
 *
 * Stands in for MARSSx86 (see DESIGN.md). The core is an interval
 * model of a 4-wide out-of-order machine: instructions retire at
 * issue width, L2 hits are partially hidden, and DRAM misses are
 * overlapped up to the workload's memory-level parallelism, with
 * miss latencies produced by the event-driven DRAM model so that
 * bandwidth contention shows up as queueing.
 */

#ifndef REF_SIM_SYSTEM_HH
#define REF_SIM_SYSTEM_HH

#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dram.hh"
#include "sim/trace.hh"

namespace ref::sim {

/** Per-workload core-timing behaviour. */
struct TimingParams
{
    /**
     * Average number of overlapped outstanding DRAM misses; the
     * exposed stall per miss is latency / mlp. Streaming,
     * prefetch-friendly codes have high MLP; pointer-chasing codes
     * sit near 1.
     */
    double mlp = 2.0;
    /** Extra CPI on non-memory instructions (dependency stalls). */
    double nonMemCpi = 0.0;
};

/** Result of one simulation run. */
struct RunResult
{
    std::uint64_t instructions = 0;
    double cycles = 0;
    double ipc = 0;
    CacheStats l1;
    CacheStats l2;
    DramStats dram;
    double avgDramLatencyCycles = 0;
    double deliveredBandwidthGBps = 0;
    std::uint64_t prefetchesIssued = 0;
};

/** A single-core system with private L1/L2 and one DRAM channel. */
class CmpSystem
{
  public:
    explicit CmpSystem(const PlatformConfig &config);

    /**
     * Run a trace to completion and report timing.
     *
     * @param warmup_fraction Leading share of the trace used only to
     *        warm caches and the DRAM queue state; statistics and
     *        IPC cover the remainder, so cold misses do not
     *        masquerade as capacity misses.
     */
    RunResult run(const Trace &trace, const TimingParams &timing,
                  double warmup_fraction = 0.0);

    const PlatformConfig &config() const { return config_; }

  private:
    PlatformConfig config_;
    Cache l1_;
    Cache l2_;
    DramModel dram_;
};

} // namespace ref::sim

#endif // REF_SIM_SYSTEM_HH
