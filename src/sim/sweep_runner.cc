#include "sweep_runner.hh"

#include <algorithm>
#include <bit>
#include <future>
#include <type_traits>
#include <utility>

#include "util/logging.hh"

namespace ref::sim {
namespace {

/** Leading share of each trace used only to warm caches. */
constexpr double kWarmupFraction = 0.35;

/** SplitMix64 finaliser: decorrelates structured inputs. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

template <typename Int,
          std::enable_if_t<std::is_integral_v<Int>, int> = 0>
std::uint64_t
hashCombine(std::uint64_t h, Int value)
{
    return mix64(h ^ mix64(static_cast<std::uint64_t>(value)));
}

std::uint64_t
hashCombine(std::uint64_t h, double value)
{
    return hashCombine(h, std::bit_cast<std::uint64_t>(value));
}

/** Trace identity: everything that determines the generated ops. */
std::uint64_t
traceId(const TraceParams &params, std::size_t block_bytes,
        std::size_t operations)
{
    std::uint64_t h = 0x7261636549640001ULL;  // "traceId" tag.
    h = hashCombine(h, params.workingSetBytes);
    h = hashCombine(h, params.zipfExponent);
    h = hashCombine(h, params.memIntensity);
    h = hashCombine(h, params.streamFraction);
    h = hashCombine(h, params.writeFraction);
    h = hashCombine(h, params.burstiness);
    h = hashCombine(h, params.seed);
    h = hashCombine(h, block_bytes);
    h = hashCombine(h, operations);
    return h;
}

/** Config identity: everything that determines timing on a trace. */
std::uint64_t
configId(const PlatformConfig &config, const TimingParams &timing,
         double warmup_fraction)
{
    std::uint64_t h = 0x636f6e6669674964ULL;  // "configId" tag.
    h = hashCombine(h, config.core.clockGHz);
    h = hashCombine(h, config.core.issueWidth);
    h = hashCombine(h, config.core.missQueueSize);
    h = hashCombine(h, config.core.nextLinePrefetch ? 1u : 0u);
    for (const CacheConfig *cache : {&config.l1, &config.l2}) {
        h = hashCombine(h, cache->sizeBytes);
        h = hashCombine(h, cache->associativity);
        h = hashCombine(h, cache->blockBytes);
        h = hashCombine(h, cache->latencyCycles);
    }
    h = hashCombine(h, config.dram.bandwidthGBps);
    h = hashCombine(h, config.dram.channels);
    h = hashCombine(h, config.dram.banks);
    h = hashCombine(h, config.dram.rowCycleNs);
    h = hashCombine(h, config.dram.accessNs);
    h = hashCombine(h, config.dram.casNs);
    h = hashCombine(h, config.dram.controllerCycles);
    h = hashCombine(h,
                    static_cast<std::uint64_t>(config.dram.pagePolicy));
    h = hashCombine(h, config.dram.rowBytes);
    h = hashCombine(h, timing.mlp);
    h = hashCombine(h, timing.nonMemCpi);
    h = hashCombine(h, warmup_fraction);
    return h;
}

/** Wait for every future, then rethrow the first stored exception. */
template <typename T>
void
drain(std::vector<std::future<T>> &futures)
{
    for (auto &future : futures)
        future.wait();
    for (auto &future : futures)
        future.get();
}

} // namespace

std::size_t
SweepCellKeyHash::operator()(const SweepCellKey &key) const
{
    return static_cast<std::size_t>(
        hashCombine(key.traceId, key.configId));
}

std::uint64_t
sweepCellSeed(std::uint64_t trace_seed, double bandwidth_gbps,
              std::size_t cache_bytes)
{
    std::uint64_t h = 0x5357454550434cULL;  // "SWEEPCL" tag.
    h = hashCombine(h, trace_seed);
    h = hashCombine(h, bandwidth_gbps);
    h = hashCombine(h, cache_bytes);
    return h;
}

SweepPoint
simulateSweepCell(const Trace &trace, const PlatformConfig &config,
                  const TimingParams &timing, double warmup_fraction,
                  std::uint64_t seed)
{
    CmpSystem system(config);
    SweepPoint point;
    point.bandwidthGBps = config.dram.bandwidthGBps;
    point.cacheMB = static_cast<double>(config.l2.sizeBytes) /
                    (1024.0 * 1024.0);
    point.rngSeed = seed;
    point.detail = system.run(trace, timing, warmup_fraction);
    point.ipc = point.detail.ipc;
    return point;
}

core::PerformanceProfile
toPerformanceProfile(const std::vector<SweepPoint> &points)
{
    core::PerformanceProfile profile;
    profile.reserve(points.size());
    for (const auto &point : points) {
        profile.push_back(core::ProfilePoint{
            {point.bandwidthGBps, point.cacheMB}, point.ipc});
    }
    return profile;
}

ProfileCache::ProfileCache(std::size_t capacity) : capacity_(capacity)
{}

bool
ProfileCache::lookup(const SweepCellKey &key, SweepPoint &point)
{
    if (capacity_ == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found == index_.end()) {
        ++stats_.misses;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, found->second);
    point = found->second->second;
    ++stats_.hits;
    return true;
}

void
ProfileCache::insert(const SweepCellKey &key, const SweepPoint &point)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
        // A concurrent sweep computed the same cell; both results
        // are bit-identical, so keep the incumbent.
        lru_.splice(lru_.begin(), lru_, found->second);
        return;
    }
    lru_.emplace_front(key, point);
    index_.emplace(key, lru_.begin());
    while (index_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

SweepRunner::SweepRunner(PlatformConfig base, std::size_t trace_ops,
                         SweepOptions options)
    : base_(base),
      traceOps_(trace_ops),
      jobs_(options.jobs == 0 ? ThreadPool::defaultJobs()
                              : options.jobs),
      cache_(options.cacheCells)
{
    REF_REQUIRE(traceOps_ > 0, "need a positive trace length");
}

ThreadPool &
SweepRunner::pool()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    return *pool_;
}

Trace
SweepRunner::generateTrace(const WorkloadSpec &workload) const
{
    // One trace per workload, replayed on every configuration so
    // the only variation across points is architectural. The trace
    // must dwarf the working set or cold misses drown capacity
    // misses; the leading warmup share only warms the caches.
    const std::size_t working_set_blocks =
        workload.trace.workingSetBytes / base_.l2.blockBytes;
    const std::size_t ops =
        std::max(traceOps_, 4 * working_set_blocks);
    TraceGenerator generator(workload.trace, base_.l2.blockBytes);
    return generator.generate(ops);
}

SweepPoint
SweepRunner::runCell(const WorkloadSpec &workload, const Trace &trace,
                     double bandwidth, std::size_t cache_bytes)
{
    PlatformConfig config = base_;
    config.l2.sizeBytes = cache_bytes;
    config.dram.bandwidthGBps = bandwidth;

    const SweepCellKey key{
        traceId(workload.trace, base_.l2.blockBytes,
                trace.ops.size()),
        configId(config, workload.timing, kWarmupFraction)};
    SweepPoint point;
    if (cache_.lookup(key, point))
        return point;

    point = simulateSweepCell(
        trace, config, workload.timing, kWarmupFraction,
        sweepCellSeed(workload.trace.seed, bandwidth, cache_bytes));
    cache_.insert(key, point);
    return point;
}

std::vector<SweepPoint>
SweepRunner::sweep(const WorkloadSpec &workload)
{
    return sweep(workload, table1Bandwidths(), table1CacheSizes());
}

void
SweepRunner::logCacheSummary(const char *scope, std::size_t cells,
                             const ProfileCacheStats &before) const
{
    const ProfileCacheStats now = cache_.stats();
    REF_INFORM("sweep cache [" << scope << "]: " << cells
                               << " cells, hits="
                               << now.hits - before.hits << " misses="
                               << now.misses - before.misses
                               << " evictions="
                               << now.evictions - before.evictions
                               << " (lifetime hits=" << now.hits
                               << " misses=" << now.misses
                               << " evictions=" << now.evictions
                               << " resident=" << cache_.size() << "/"
                               << cache_.capacity() << ")");
}

std::vector<SweepPoint>
SweepRunner::sweep(const WorkloadSpec &workload,
                   const std::vector<double> &bandwidths,
                   const std::vector<std::size_t> &cache_sizes)
{
    REF_REQUIRE(!bandwidths.empty() && !cache_sizes.empty(),
                "sweep needs at least one configuration");

    const ProfileCacheStats before = cache_.stats();
    const Trace trace = generateTrace(workload);

    // Materialise the grid up front: cell i always lands in slot i,
    // so the result order is independent of scheduling.
    struct Cell
    {
        double bandwidth;
        std::size_t cacheBytes;
    };
    std::vector<Cell> cells;
    cells.reserve(bandwidths.size() * cache_sizes.size());
    for (double bandwidth : bandwidths)
        for (std::size_t cache_bytes : cache_sizes)
            cells.push_back({bandwidth, cache_bytes});

    std::vector<SweepPoint> points(cells.size());
    if (jobs_ <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            points[i] = runCell(workload, trace, cells[i].bandwidth,
                                cells[i].cacheBytes);
        }
        logCacheSummary(workload.name.c_str(), cells.size(), before);
        return points;
    }

    std::vector<std::future<void>> futures;
    futures.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        futures.push_back(pool().submit([this, &workload, &trace,
                                         &cells, &points, i] {
            points[i] = runCell(workload, trace, cells[i].bandwidth,
                                cells[i].cacheBytes);
        }));
    }
    drain(futures);
    logCacheSummary(workload.name.c_str(), cells.size(), before);
    return points;
}

std::vector<std::vector<SweepPoint>>
SweepRunner::sweepMany(const std::vector<WorkloadSpec> &workloads)
{
    const std::vector<double> bandwidths = table1Bandwidths();
    const std::vector<std::size_t> cache_sizes = table1CacheSizes();
    const std::size_t cells_per_workload =
        bandwidths.size() * cache_sizes.size();
    const ProfileCacheStats before = cache_.stats();

    if (jobs_ <= 1 || workloads.size() * cells_per_workload <= 1) {
        std::vector<std::vector<SweepPoint>> results;
        results.reserve(workloads.size());
        for (const auto &workload : workloads)
            results.push_back(sweep(workload, bandwidths, cache_sizes));
        return results;
    }

    // Phase 1: trace generation is itself a decent fraction of a
    // sweep, so fan it out too.
    std::vector<Trace> traces(workloads.size());
    {
        std::vector<std::future<void>> futures;
        futures.reserve(workloads.size());
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            futures.push_back(pool().submit([this, &workloads, &traces,
                                             w] {
                traces[w] = generateTrace(workloads[w]);
            }));
        }
        drain(futures);
    }

    // Phase 2: all workloads' cells share one (workloads x cells)
    // wide fan-out instead of draining one workload at a time.
    std::vector<std::vector<SweepPoint>> results(workloads.size());
    std::vector<std::future<void>> futures;
    futures.reserve(workloads.size() * cells_per_workload);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        results[w].resize(cells_per_workload);
        std::size_t i = 0;
        for (double bandwidth : bandwidths) {
            for (std::size_t cache_bytes : cache_sizes) {
                futures.push_back(pool().submit(
                    [this, &workloads, &traces, &results, w, i,
                     bandwidth, cache_bytes] {
                        results[w][i] =
                            runCell(workloads[w], traces[w],
                                    bandwidth, cache_bytes);
                    }));
                ++i;
            }
        }
    }
    drain(futures);
    logCacheSummary("batch", workloads.size() * cells_per_workload,
                    before);
    return results;
}

core::CobbDouglasFit
SweepRunner::profileAndFit(const WorkloadSpec &workload)
{
    return core::fitCobbDouglas(toPerformanceProfile(sweep(workload)));
}

} // namespace ref::sim
