#include "sweep_runner.hh"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <future>
#include <iomanip>
#include <sstream>
#include <type_traits>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace ref::sim {
namespace {

/**
 * Process-wide sweep-cache telemetry, shared by every SweepRunner
 * (the per-runner ProfileCacheStats stay authoritative for the
 * sweep-summary log; these feed metrics scrapes).
 */
struct SweepCacheCounters
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &diskHits;
    obs::Counter &diskWrites;
    obs::Counter &diskBad;
};

SweepCacheCounters &
sweepCacheCounters()
{
    auto &registry = obs::MetricsRegistry::global();
    static SweepCacheCounters counters{
        registry.counter("ref_sweep_cache_hits_total",
                         "Sweep cells served from the memory cache"),
        registry.counter("ref_sweep_cache_misses_total",
                         "Sweep cells absent from the memory cache"),
        registry.counter("ref_sweep_cache_evictions_total",
                         "Sweep cells evicted by the LRU"),
        registry.counter("ref_sweep_cache_disk_hits_total",
                         "Sweep cells served from the disk tier"),
        registry.counter("ref_sweep_cache_disk_writes_total",
                         "Sweep cells persisted to the disk tier"),
        registry.counter(
            "ref_sweep_cache_disk_bad_total",
            "Corrupt or incompatible disk cells recomputed"),
    };
    return counters;
}

/** Leading share of each trace used only to warm caches. */
constexpr double kWarmupFraction = 0.35;

/** SplitMix64 finaliser: decorrelates structured inputs. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

template <typename Int,
          std::enable_if_t<std::is_integral_v<Int>, int> = 0>
std::uint64_t
hashCombine(std::uint64_t h, Int value)
{
    return mix64(h ^ mix64(static_cast<std::uint64_t>(value)));
}

std::uint64_t
hashCombine(std::uint64_t h, double value)
{
    return hashCombine(h, std::bit_cast<std::uint64_t>(value));
}

/** Trace identity: everything that determines the generated ops. */
std::uint64_t
traceId(const TraceParams &params, std::size_t block_bytes,
        std::size_t operations)
{
    std::uint64_t h = 0x7261636549640001ULL;  // "traceId" tag.
    h = hashCombine(h, params.workingSetBytes);
    h = hashCombine(h, params.zipfExponent);
    h = hashCombine(h, params.memIntensity);
    h = hashCombine(h, params.streamFraction);
    h = hashCombine(h, params.writeFraction);
    h = hashCombine(h, params.burstiness);
    h = hashCombine(h, params.seed);
    h = hashCombine(h, block_bytes);
    h = hashCombine(h, operations);
    return h;
}

/** Config identity: everything that determines timing on a trace. */
std::uint64_t
configId(const PlatformConfig &config, const TimingParams &timing,
         double warmup_fraction)
{
    std::uint64_t h = 0x636f6e6669674964ULL;  // "configId" tag.
    h = hashCombine(h, config.core.clockGHz);
    h = hashCombine(h, config.core.issueWidth);
    h = hashCombine(h, config.core.missQueueSize);
    h = hashCombine(h, config.core.nextLinePrefetch ? 1u : 0u);
    for (const CacheConfig *cache : {&config.l1, &config.l2}) {
        h = hashCombine(h, cache->sizeBytes);
        h = hashCombine(h, cache->associativity);
        h = hashCombine(h, cache->blockBytes);
        h = hashCombine(h, cache->latencyCycles);
    }
    h = hashCombine(h, config.dram.bandwidthGBps);
    h = hashCombine(h, config.dram.channels);
    h = hashCombine(h, config.dram.banks);
    h = hashCombine(h, config.dram.rowCycleNs);
    h = hashCombine(h, config.dram.accessNs);
    h = hashCombine(h, config.dram.casNs);
    h = hashCombine(h, config.dram.controllerCycles);
    h = hashCombine(h,
                    static_cast<std::uint64_t>(config.dram.pagePolicy));
    h = hashCombine(h, config.dram.rowBytes);
    h = hashCombine(h, timing.mlp);
    h = hashCombine(h, timing.nonMemCpi);
    h = hashCombine(h, warmup_fraction);
    return h;
}

/** Disk cell-file layout version; bump on any payload change. */
constexpr std::uint32_t kCellMagic = 0x52465043;  // "RFPC".
constexpr std::uint32_t kCellVersion = 1;

/** Serialise one cached cell: key (verified on load) + every field
 *  of the SweepPoint, doubles as raw IEEE-754 bits. */
std::string
encodeCell(const SweepCellKey &key, const SweepPoint &point)
{
    ByteWriter writer;
    writer.u32(kCellMagic);
    writer.u32(kCellVersion);
    writer.u64(key.traceId);
    writer.u64(key.configId);
    writer.f64(point.bandwidthGBps);
    writer.f64(point.cacheMB);
    writer.f64(point.ipc);
    writer.u64(point.rngSeed);
    const RunResult &detail = point.detail;
    writer.u64(detail.instructions);
    writer.f64(detail.cycles);
    writer.f64(detail.ipc);
    for (const CacheStats *level : {&detail.l1, &detail.l2}) {
        writer.u64(level->accesses);
        writer.u64(level->hits);
        writer.u64(level->misses);
        writer.u64(level->writebacks);
    }
    writer.u64(detail.dram.requests);
    writer.u64(detail.dram.blocksTransferred);
    writer.u64(detail.dram.totalLatencyCycles);
    writer.u64(detail.dram.busBusyCycles);
    writer.u64(detail.dram.rowHits);
    writer.f64(detail.avgDramLatencyCycles);
    writer.f64(detail.deliveredBandwidthGBps);
    writer.u64(detail.prefetchesIssued);
    return writer.take();
}

/** Decode a cell payload; false if the header or key mismatches. */
bool
decodeCell(std::string_view payload, const SweepCellKey &key,
           SweepPoint &point)
{
    ByteReader reader(payload);
    if (reader.u32() != kCellMagic || reader.u32() != kCellVersion)
        return false;
    if (reader.u64() != key.traceId || reader.u64() != key.configId)
        return false;
    point.bandwidthGBps = reader.f64();
    point.cacheMB = reader.f64();
    point.ipc = reader.f64();
    point.rngSeed = reader.u64();
    RunResult &detail = point.detail;
    detail.instructions = reader.u64();
    detail.cycles = reader.f64();
    detail.ipc = reader.f64();
    for (CacheStats *level : {&detail.l1, &detail.l2}) {
        level->accesses = reader.u64();
        level->hits = reader.u64();
        level->misses = reader.u64();
        level->writebacks = reader.u64();
    }
    detail.dram.requests = reader.u64();
    detail.dram.blocksTransferred = reader.u64();
    detail.dram.totalLatencyCycles = reader.u64();
    detail.dram.busBusyCycles = reader.u64();
    detail.dram.rowHits = reader.u64();
    detail.avgDramLatencyCycles = reader.f64();
    detail.deliveredBandwidthGBps = reader.f64();
    detail.prefetchesIssued = reader.u64();
    return reader.atEnd();
}

/** Wait for every future, then rethrow the first stored exception. */
template <typename T>
void
drain(std::vector<std::future<T>> &futures)
{
    for (auto &future : futures)
        future.wait();
    for (auto &future : futures)
        future.get();
}

} // namespace

std::size_t
SweepCellKeyHash::operator()(const SweepCellKey &key) const
{
    return static_cast<std::size_t>(
        hashCombine(key.traceId, key.configId));
}

std::uint64_t
sweepCellSeed(std::uint64_t trace_seed, double bandwidth_gbps,
              std::size_t cache_bytes)
{
    std::uint64_t h = 0x5357454550434cULL;  // "SWEEPCL" tag.
    h = hashCombine(h, trace_seed);
    h = hashCombine(h, bandwidth_gbps);
    h = hashCombine(h, cache_bytes);
    return h;
}

SweepPoint
simulateSweepCell(const Trace &trace, const PlatformConfig &config,
                  const TimingParams &timing, double warmup_fraction,
                  std::uint64_t seed)
{
    CmpSystem system(config);
    SweepPoint point;
    point.bandwidthGBps = config.dram.bandwidthGBps;
    point.cacheMB = static_cast<double>(config.l2.sizeBytes) /
                    (1024.0 * 1024.0);
    point.rngSeed = seed;
    point.detail = system.run(trace, timing, warmup_fraction);
    point.ipc = point.detail.ipc;
    return point;
}

core::PerformanceProfile
toPerformanceProfile(const std::vector<SweepPoint> &points)
{
    core::PerformanceProfile profile;
    profile.reserve(points.size());
    for (const auto &point : points) {
        profile.push_back(core::ProfilePoint{
            {point.bandwidthGBps, point.cacheMB}, point.ipc});
    }
    return profile;
}

ProfileCache::ProfileCache(std::size_t capacity) : capacity_(capacity)
{}

bool
ProfileCache::lookup(const SweepCellKey &key, SweepPoint &point)
{
    if (capacity_ == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found == index_.end()) {
        ++stats_.misses;
        sweepCacheCounters().misses.add();
        return false;
    }
    lru_.splice(lru_.begin(), lru_, found->second);
    point = found->second->second;
    ++stats_.hits;
    sweepCacheCounters().hits.add();
    return true;
}

void
ProfileCache::insert(const SweepCellKey &key, const SweepPoint &point)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
        // A concurrent sweep computed the same cell; both results
        // are bit-identical, so keep the incumbent.
        lru_.splice(lru_.begin(), lru_, found->second);
        return;
    }
    lru_.emplace_front(key, point);
    index_.emplace(key, lru_.begin());
    while (index_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
        sweepCacheCounters().evictions.add();
    }
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
ProfileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

void
ProfileCache::noteDiskHit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.diskHits;
    sweepCacheCounters().diskHits.add();
}

void
ProfileCache::noteDiskWrite()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.diskWrites;
    sweepCacheCounters().diskWrites.add();
}

void
ProfileCache::noteDiskBadEntry()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.diskBadEntries;
    sweepCacheCounters().diskBad.add();
}

SweepRunner::SweepRunner(PlatformConfig base, std::size_t trace_ops,
                         SweepOptions options)
    : base_(base),
      traceOps_(trace_ops),
      jobs_(options.jobs == 0 ? ThreadPool::defaultJobs()
                              : options.jobs),
      cache_(options.cacheCells),
      cacheDir_(std::move(options.cacheDir))
{
    REF_REQUIRE(traceOps_ > 0, "need a positive trace length");
    if (!cacheDir_.empty()) {
        std::error_code ignored;
        std::filesystem::create_directories(cacheDir_, ignored);
    }
}

ThreadPool &
SweepRunner::pool()
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    return *pool_;
}

Trace
SweepRunner::generateTrace(const WorkloadSpec &workload) const
{
    // One trace per workload, replayed on every configuration so
    // the only variation across points is architectural. The trace
    // must dwarf the working set or cold misses drown capacity
    // misses; the leading warmup share only warms the caches.
    const std::size_t working_set_blocks =
        workload.trace.workingSetBytes / base_.l2.blockBytes;
    const std::size_t ops =
        std::max(traceOps_, 4 * working_set_blocks);
    TraceGenerator generator(workload.trace, base_.l2.blockBytes);
    return generator.generate(ops);
}

SweepPoint
SweepRunner::runCell(const WorkloadSpec &workload, const Trace &trace,
                     double bandwidth, std::size_t cache_bytes)
{
    PlatformConfig config = base_;
    config.l2.sizeBytes = cache_bytes;
    config.dram.bandwidthGBps = bandwidth;

    const SweepCellKey key{
        traceId(workload.trace, base_.l2.blockBytes,
                trace.ops.size()),
        configId(config, workload.timing, kWarmupFraction)};
    SweepPoint point;
    if (cache_.lookup(key, point))
        return point;
    if (loadCellFromDisk(key, point)) {
        cache_.insert(key, point);
        return point;
    }

    {
        obs::Span span("sweep.cell", "sim");
        point = simulateSweepCell(
            trace, config, workload.timing, kWarmupFraction,
            sweepCellSeed(workload.trace.seed, bandwidth,
                          cache_bytes));
    }
    cache_.insert(key, point);
    storeCellToDisk(key, point);
    return point;
}

std::string
SweepRunner::cellPath(const SweepCellKey &key) const
{
    std::ostringstream name;
    name << "cell-" << std::hex << std::setfill('0') << std::setw(16)
         << key.traceId << "-" << std::setw(16) << key.configId
         << ".ref";
    return (std::filesystem::path(cacheDir_) / name.str()).string();
}

bool
SweepRunner::loadCellFromDisk(const SweepCellKey &key,
                              SweepPoint &point)
{
    if (cacheDir_.empty())
        return false;
    const std::string path = cellPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return false;  // Never simulated here before: a plain miss.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();

    std::size_t offset = 0;
    std::string_view payload;
    bool decoded = false;
    if (readFrame(bytes, offset, payload) == FrameStatus::Ok &&
        offset == bytes.size()) {
        try {
            decoded = decodeCell(payload, key, point);
        } catch (const FatalError &) {
            // CRC-valid but semantically short: treat as corrupt.
            decoded = false;
        }
    }
    if (!decoded) {
        // Torn, bit-rotted, or from an incompatible version: ignore
        // it and recompute — the rewrite replaces the bad file.
        cache_.noteDiskBadEntry();
        return false;
    }
    cache_.noteDiskHit();
    return true;
}

void
SweepRunner::storeCellToDisk(const SweepCellKey &key,
                             const SweepPoint &point)
{
    if (cacheDir_.empty())
        return;
    const std::string path = cellPath(key);
    const std::string tmp = path + ".tmp";
    const std::string frame = frameRecord(encodeCell(key, point));

    // Writes are serialised in-process; across processes the rename
    // is atomic and both writers produce bit-identical bytes, so the
    // worst interleaving leaves a torn file that the next reader
    // classifies as corrupt and recomputes.
    std::lock_guard<std::mutex> lock(diskMutex_);
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out.is_open())
            return;  // Unwritable cache dir: degrade to no disk tier.
        out.write(frame.data(),
                  static_cast<std::streamsize>(frame.size()));
        if (!out.good())
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (!ec)
        cache_.noteDiskWrite();
}

std::vector<SweepPoint>
SweepRunner::sweep(const WorkloadSpec &workload)
{
    return sweep(workload, table1Bandwidths(), table1CacheSizes());
}

void
SweepRunner::logCacheSummary(const char *scope, std::size_t cells,
                             const ProfileCacheStats &before) const
{
    const ProfileCacheStats now = cache_.stats();
    std::ostringstream disk;
    if (!cacheDir_.empty()) {
        disk << " disk_hits=" << now.diskHits - before.diskHits
             << " disk_writes=" << now.diskWrites - before.diskWrites
             << " disk_bad=" << now.diskBadEntries -
                                    before.diskBadEntries;
    }
    REF_INFORM("sweep cache [" << scope << "]: " << cells
                               << " cells, hits="
                               << now.hits - before.hits << " misses="
                               << now.misses - before.misses
                               << " evictions="
                               << now.evictions - before.evictions
                               << disk.str()
                               << " (lifetime hits=" << now.hits
                               << " misses=" << now.misses
                               << " evictions=" << now.evictions
                               << " resident=" << cache_.size() << "/"
                               << cache_.capacity() << ")");
}

std::vector<SweepPoint>
SweepRunner::sweep(const WorkloadSpec &workload,
                   const std::vector<double> &bandwidths,
                   const std::vector<std::size_t> &cache_sizes)
{
    REF_REQUIRE(!bandwidths.empty() && !cache_sizes.empty(),
                "sweep needs at least one configuration");

    const ProfileCacheStats before = cache_.stats();
    const Trace trace = generateTrace(workload);

    // Materialise the grid up front: cell i always lands in slot i,
    // so the result order is independent of scheduling.
    struct Cell
    {
        double bandwidth;
        std::size_t cacheBytes;
    };
    std::vector<Cell> cells;
    cells.reserve(bandwidths.size() * cache_sizes.size());
    for (double bandwidth : bandwidths)
        for (std::size_t cache_bytes : cache_sizes)
            cells.push_back({bandwidth, cache_bytes});

    std::vector<SweepPoint> points(cells.size());
    if (jobs_ <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            points[i] = runCell(workload, trace, cells[i].bandwidth,
                                cells[i].cacheBytes);
        }
        logCacheSummary(workload.name.c_str(), cells.size(), before);
        return points;
    }

    std::vector<std::future<void>> futures;
    futures.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        futures.push_back(pool().submit([this, &workload, &trace,
                                         &cells, &points, i] {
            points[i] = runCell(workload, trace, cells[i].bandwidth,
                                cells[i].cacheBytes);
        }));
    }
    drain(futures);
    logCacheSummary(workload.name.c_str(), cells.size(), before);
    return points;
}

std::vector<std::vector<SweepPoint>>
SweepRunner::sweepMany(const std::vector<WorkloadSpec> &workloads)
{
    const std::vector<double> bandwidths = table1Bandwidths();
    const std::vector<std::size_t> cache_sizes = table1CacheSizes();
    const std::size_t cells_per_workload =
        bandwidths.size() * cache_sizes.size();
    const ProfileCacheStats before = cache_.stats();

    if (jobs_ <= 1 || workloads.size() * cells_per_workload <= 1) {
        std::vector<std::vector<SweepPoint>> results;
        results.reserve(workloads.size());
        for (const auto &workload : workloads)
            results.push_back(sweep(workload, bandwidths, cache_sizes));
        return results;
    }

    // Phase 1: trace generation is itself a decent fraction of a
    // sweep, so fan it out too.
    std::vector<Trace> traces(workloads.size());
    {
        std::vector<std::future<void>> futures;
        futures.reserve(workloads.size());
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            futures.push_back(pool().submit([this, &workloads, &traces,
                                             w] {
                traces[w] = generateTrace(workloads[w]);
            }));
        }
        drain(futures);
    }

    // Phase 2: all workloads' cells share one (workloads x cells)
    // wide fan-out instead of draining one workload at a time.
    std::vector<std::vector<SweepPoint>> results(workloads.size());
    std::vector<std::future<void>> futures;
    futures.reserve(workloads.size() * cells_per_workload);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        results[w].resize(cells_per_workload);
        std::size_t i = 0;
        for (double bandwidth : bandwidths) {
            for (std::size_t cache_bytes : cache_sizes) {
                futures.push_back(pool().submit(
                    [this, &workloads, &traces, &results, w, i,
                     bandwidth, cache_bytes] {
                        results[w][i] =
                            runCell(workloads[w], traces[w],
                                    bandwidth, cache_bytes);
                    }));
                ++i;
            }
        }
    }
    drain(futures);
    logCacheSummary("batch", workloads.size() * cells_per_workload,
                    before);
    return results;
}

core::CobbDouglasFit
SweepRunner::profileAndFit(const WorkloadSpec &workload)
{
    return core::fitCobbDouglas(toPerformanceProfile(sweep(workload)));
}

} // namespace ref::sim
