/**
 * @file
 * Event-driven DRAM model.
 *
 * Closed-page policy (Table 1): every access activates a row,
 * transfers one cache block, and precharges, keeping its bank busy
 * for tRC. Open-page mode keeps rows open so that consecutive
 * accesses to the same row skip the activate (CAS-only latency) —
 * useful for studying locality-sensitive controllers beyond the
 * paper's configuration.
 *
 * Each channel owns a data bus that serializes block transfers at
 * the per-channel share of the configured bandwidth — the quantity
 * the Table 1 sweep varies. Queueing delay emerges from bank and bus
 * contention rather than from an analytic formula, standing in for
 * DRAMSim2 (see DESIGN.md). Blocks interleave across channels, then
 * across banks.
 */

#ifndef REF_SIM_DRAM_HH
#define REF_SIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"

namespace ref::sim {

/** Aggregate DRAM statistics. */
struct DramStats
{
    std::uint64_t requests = 0;
    std::uint64_t blocksTransferred = 0;
    std::uint64_t totalLatencyCycles = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t rowHits = 0;   //!< Open-page row-buffer hits.

    double averageLatency() const
    {
        return requests == 0 ? 0.0
                             : static_cast<double>(totalLatencyCycles) /
                                   static_cast<double>(requests);
    }

    double rowHitRate() const
    {
        return requests == 0 ? 0.0
                             : static_cast<double>(rowHits) /
                                   static_cast<double>(requests);
    }
};

/** One or more DRAM channels with banked timing, in core cycles. */
class DramModel
{
  public:
    DramModel(const DramConfig &config, const CoreConfig &core,
              std::size_t block_bytes = 64);

    /**
     * Issue a block request at core cycle @p issue_cycle; returns
     * the completion cycle. Requests may be issued with
     * non-decreasing or out-of-order timestamps; each is serviced
     * no earlier than its issue time.
     */
    std::uint64_t access(std::uint64_t issue_cycle,
                         std::uint64_t address);

    /**
     * Delivered bandwidth in GB/s over the given elapsed interval.
     */
    double deliveredBandwidthGBps(std::uint64_t elapsed_cycles) const;

    /** Cycles one channel's bus needs for one block transfer. */
    std::uint64_t transferCycles() const { return transferCycles_; }

    /** Cycles from activate to first data (tRCD + CAS). */
    std::uint64_t accessCycles() const { return accessCycles_; }

    /** Cycles for a row-buffer hit (CAS only). */
    std::uint64_t casCycles() const { return casCycles_; }

    const DramStats &stats() const { return stats_; }
    void clearStats() { stats_ = DramStats{}; }

  private:
    struct Bank
    {
        std::uint64_t freeAt = 0;
        std::uint64_t openRow = ~std::uint64_t{0};
    };

    DramConfig config_;
    double clockGHz_;
    std::size_t blockBytes_;
    std::uint64_t transferCycles_;
    std::uint64_t accessCycles_;
    std::uint64_t casCycles_;
    std::uint64_t rowCycleCycles_;
    std::vector<Bank> banks_;            //!< channels * banks.
    std::vector<std::uint64_t> busFreeAt_;  //!< Per channel.
    DramStats stats_;
};

} // namespace ref::sim

#endif // REF_SIM_DRAM_HH
