/**
 * @file
 * Synthetic memory reference traces.
 *
 * Stands in for the paper's PARSEC/SPLASH-2x/Phoenix binaries (see
 * DESIGN.md substitution table). A trace interleaves two reference
 * components whose mix is the main behavioural knob:
 *
 *  - a *re-use* component: accesses to a fixed working set with
 *    Zipf-distributed block popularity — tunable temporal locality
 *    that rewards cache capacity;
 *  - a *streaming* component: an ever-advancing sequential pointer
 *    with no re-use — it defeats any cache and demands bandwidth.
 *
 * Non-memory work appears as per-access instruction gaps whose mean
 * encodes memory intensity and whose burstiness models clustered
 * misses.
 */

#ifndef REF_SIM_TRACE_HH
#define REF_SIM_TRACE_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace ref::sim {

/** One memory operation in a trace. */
struct MemOp
{
    std::uint64_t address = 0;
    bool isWrite = false;
    /** Non-memory instructions executed since the previous MemOp. */
    std::uint32_t gapInstructions = 0;
};

/** A reference stream plus its instruction count. */
struct Trace
{
    std::vector<MemOp> ops;
    std::uint64_t instructions = 0;  //!< Total including memory ops.
};

/** Behavioural parameters of a synthetic workload's trace. */
struct TraceParams
{
    std::size_t workingSetBytes = 1024 * 1024;
    double zipfExponent = 0.8;    //!< Re-use skew; 0 = uniform.
    double memIntensity = 0.1;    //!< Memory ops per instruction.
    double streamFraction = 0.0;  //!< Share of streaming accesses.
    double writeFraction = 0.3;
    /**
     * Probability that the next access follows immediately (gap 0),
     * creating bursts; remaining gaps are geometric so that the
     * overall mean matches memIntensity.
     */
    double burstiness = 0.0;
    std::uint64_t seed = 1;
};

/** Deterministic generator for synthetic reference streams. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceParams &params,
                            std::size_t block_bytes = 64);

    /** Generate a trace with the given number of memory operations. */
    Trace generate(std::size_t operations);

  private:
    std::uint64_t reuseAddress();
    std::uint64_t streamAddress();
    std::uint32_t nextGap();

    TraceParams params_;
    std::size_t blockBytes_;
    std::size_t workingSetBlocks_;
    Rng rng_;
    ZipfDistribution zipf_;
    std::uint64_t streamPointer_;
};

} // namespace ref::sim

#endif // REF_SIM_TRACE_HH
