/**
 * @file
 * Descriptive statistics used by the fitting and evaluation code.
 */

#ifndef REF_STATS_DESCRIPTIVE_HH
#define REF_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace ref::stats {

/** Arithmetic mean of a non-empty sample. */
double mean(const std::vector<double> &sample);

/** Population variance (divide by n) of a non-empty sample. */
double variance(const std::vector<double> &sample);

/** Sample variance (divide by n-1); requires at least two points. */
double sampleVariance(const std::vector<double> &sample);

/** Population standard deviation. */
double stddev(const std::vector<double> &sample);

/** Minimum of a non-empty sample. */
double minimum(const std::vector<double> &sample);

/** Maximum of a non-empty sample. */
double maximum(const std::vector<double> &sample);

/** Median (average of the middle pair for even sizes). */
double median(std::vector<double> sample);

/** Total sum of squares around the mean: sum (y_i - mean)^2. */
double totalSumOfSquares(const std::vector<double> &sample);

/** Pearson correlation of two equal-length samples. */
double correlation(const std::vector<double> &a,
                   const std::vector<double> &b);

} // namespace ref::stats

#endif // REF_STATS_DESCRIPTIVE_HH
