#include "descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ref::stats {

double
mean(const std::vector<double> &sample)
{
    REF_REQUIRE(!sample.empty(), "mean of empty sample");
    double total = 0;
    for (double value : sample)
        total += value;
    return total / static_cast<double>(sample.size());
}

double
variance(const std::vector<double> &sample)
{
    const double mu = mean(sample);
    double total = 0;
    for (double value : sample)
        total += (value - mu) * (value - mu);
    return total / static_cast<double>(sample.size());
}

double
sampleVariance(const std::vector<double> &sample)
{
    REF_REQUIRE(sample.size() >= 2,
                "sample variance needs at least two points");
    const double mu = mean(sample);
    double total = 0;
    for (double value : sample)
        total += (value - mu) * (value - mu);
    return total / static_cast<double>(sample.size() - 1);
}

double
stddev(const std::vector<double> &sample)
{
    return std::sqrt(variance(sample));
}

double
minimum(const std::vector<double> &sample)
{
    REF_REQUIRE(!sample.empty(), "minimum of empty sample");
    return *std::min_element(sample.begin(), sample.end());
}

double
maximum(const std::vector<double> &sample)
{
    REF_REQUIRE(!sample.empty(), "maximum of empty sample");
    return *std::max_element(sample.begin(), sample.end());
}

double
median(std::vector<double> sample)
{
    REF_REQUIRE(!sample.empty(), "median of empty sample");
    std::sort(sample.begin(), sample.end());
    const std::size_t n = sample.size();
    if (n % 2 == 1)
        return sample[n / 2];
    return 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
}

double
totalSumOfSquares(const std::vector<double> &sample)
{
    const double mu = mean(sample);
    double total = 0;
    for (double value : sample)
        total += (value - mu) * (value - mu);
    return total;
}

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    REF_REQUIRE(a.size() == b.size() && a.size() >= 2,
                "correlation needs two equal-length samples of size >= 2");
    const double mean_a = mean(a);
    const double mean_b = mean(b);
    double cov = 0, var_a = 0, var_b = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - mean_a) * (b[i] - mean_b);
        var_a += (a[i] - mean_a) * (a[i] - mean_a);
        var_b += (b[i] - mean_b) * (b[i] - mean_b);
    }
    REF_REQUIRE(var_a > 0 && var_b > 0,
                "correlation undefined for a constant sample");
    return cov / std::sqrt(var_a * var_b);
}

} // namespace ref::stats
