/**
 * @file
 * Ordinary least squares linear regression.
 *
 * This is the statistical engine behind Cobb-Douglas fitting
 * (paper Eq. 16): after log transformation the utility model is a
 * standard linear model whose parameters are the elasticities.
 */

#ifndef REF_STATS_LINEAR_MODEL_HH
#define REF_STATS_LINEAR_MODEL_HH

#include <vector>

#include "linalg/matrix.hh"

namespace ref::stats {

/** A fitted ordinary-least-squares linear model. */
class LinearModel
{
  public:
    /**
     * Fit y ~ X (optionally with an intercept prepended).
     *
     * @param predictors n x p design matrix (without intercept column).
     * @param response n observations.
     * @param with_intercept Prepend a constant-1 column when true.
     *
     * Requires n > p (+1 with intercept) and a full-rank design.
     */
    LinearModel(const linalg::Matrix &predictors,
                const std::vector<double> &response,
                bool with_intercept = true);

    /** Fitted intercept; 0 when the model has none. */
    double intercept() const;

    /** Fitted slope coefficients, one per predictor column. */
    const std::vector<double> &slopes() const { return slopes_; }

    /** Predict the response for one predictor row. */
    double predict(const std::vector<double> &predictors) const;

    /** Coefficient of determination on the training data. */
    double rSquared() const { return rSquared_; }

    /** R-squared penalized for model size. */
    double adjustedRSquared() const { return adjustedRSquared_; }

    /** Residual standard error (sqrt of RSS / (n - p)). */
    double residualStdError() const { return residualStdError_; }

    /** Number of observations used in the fit. */
    std::size_t observations() const { return observations_; }

  private:
    bool withIntercept_;
    double intercept_ = 0;
    std::vector<double> slopes_;
    double rSquared_ = 0;
    double adjustedRSquared_ = 0;
    double residualStdError_ = 0;
    std::size_t observations_ = 0;
};

} // namespace ref::stats

#endif // REF_STATS_LINEAR_MODEL_HH
