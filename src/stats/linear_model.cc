#include "linear_model.hh"

#include <cmath>

#include "linalg/least_squares.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace ref::stats {

LinearModel::LinearModel(const linalg::Matrix &predictors,
                         const std::vector<double> &response,
                         bool with_intercept)
    : withIntercept_(with_intercept), observations_(response.size())
{
    const std::size_t n = predictors.rows();
    const std::size_t p = predictors.cols();
    REF_REQUIRE(n == response.size(),
                "design matrix has " << n << " rows but response has "
                    << response.size());
    const std::size_t parameters = p + (with_intercept ? 1 : 0);
    REF_REQUIRE(n > parameters,
                "need more observations (" << n << ") than parameters ("
                    << parameters << ")");

    linalg::Matrix design(n, parameters);
    for (std::size_t r = 0; r < n; ++r) {
        std::size_t c = 0;
        if (with_intercept)
            design(r, c++) = 1.0;
        for (std::size_t j = 0; j < p; ++j)
            design(r, c++) = predictors(r, j);
    }

    const auto fit = linalg::leastSquares(design, response);
    std::size_t c = 0;
    if (with_intercept)
        intercept_ = fit.coefficients[c++];
    slopes_.assign(fit.coefficients.begin() +
                       static_cast<std::ptrdiff_t>(c),
                   fit.coefficients.end());

    const double rss = fit.residualNorm * fit.residualNorm;
    const double tss = totalSumOfSquares(response);
    // A constant response has no variance to explain; define R^2 = 1
    // when the fit is (numerically) exact, 0 otherwise, rather than
    // dividing by 0.
    double response_scale = 0;
    for (double value : response)
        response_scale += value * value;
    if (tss > 1e-12 * std::max(1.0, response_scale)) {
        rSquared_ = 1.0 - rss / tss;
    } else {
        rSquared_ =
            rss <= 1e-12 * std::max(1.0, response_scale) ? 1.0 : 0.0;
    }
    const double n_d = static_cast<double>(n);
    const double p_d = static_cast<double>(parameters);
    adjustedRSquared_ =
        1.0 - (1.0 - rSquared_) * (n_d - 1.0) / (n_d - p_d);
    residualStdError_ = std::sqrt(rss / (n_d - p_d));
}

double
LinearModel::intercept() const
{
    return withIntercept_ ? intercept_ : 0.0;
}

double
LinearModel::predict(const std::vector<double> &predictors) const
{
    REF_REQUIRE(predictors.size() == slopes_.size(),
                "predict got " << predictors.size()
                    << " predictors, model has " << slopes_.size());
    double value = intercept();
    for (std::size_t j = 0; j < slopes_.size(); ++j)
        value += slopes_[j] * predictors[j];
    return value;
}

} // namespace ref::stats
