#include "descent.hh"

#include <cmath>

#include "linalg/decompose.hh"
#include "util/logging.hh"

namespace ref::solver {

namespace {

/** Forward-difference Hessian from the analytic gradient. */
linalg::Matrix
finiteDifferenceHessian(const DifferentiableFunction &objective,
                        const Vector &point, const Vector &grad)
{
    const std::size_t n = point.size();
    linalg::Matrix hessian(n, n);
    Vector probe = point;
    for (std::size_t j = 0; j < n; ++j) {
        double h = 1e-6 * std::max(1.0, std::abs(point[j]));
        const double saved = probe[j];
        // Barrier-style objectives are only differentiable on their
        // open domain; flip to a backward difference if the forward
        // probe leaves it.
        probe[j] = saved + h;
        if (!std::isfinite(objective.value(probe))) {
            h = -h;
            probe[j] = saved + h;
        }
        if (!std::isfinite(objective.value(probe))) {
            // Boxed in along this coordinate: leave the column to
            // the ridge regularization.
            probe[j] = saved;
            hessian(j, j) = 1.0;
            continue;
        }
        const Vector grad_j = objective.gradient(probe);
        probe[j] = saved;
        for (std::size_t i = 0; i < n; ++i)
            hessian(i, j) = (grad_j[i] - grad[i]) / h;
    }
    // Symmetrize; finite differences break symmetry slightly.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double avg = 0.5 * (hessian(i, j) + hessian(j, i));
            hessian(i, j) = avg;
            hessian(j, i) = avg;
        }
    }
    return hessian;
}

} // namespace

MinimizeResult
gradientDescent(const DifferentiableFunction &objective,
                const Vector &start, const MinimizeOptions &options)
{
    MinimizeResult result;
    result.point = start;
    result.value = objective.value(start);
    REF_REQUIRE(std::isfinite(result.value),
                "gradient descent must start inside the domain");

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        const Vector grad = objective.gradient(result.point);
        if (linalg::normInf(grad) <= options.gradientTolerance) {
            result.converged = true;
            result.iterations = iter;
            return result;
        }

        const Vector direction = linalg::scale(grad, -1.0);
        const double slope = linalg::dot(grad, direction);
        const auto search = backtrackingLineSearch(
            objective, result.point, direction, result.value, slope,
            options.lineSearch);
        if (!search.accepted) {
            // Cannot make progress along the gradient; treat the
            // current point as the (numerical) minimizer.
            result.iterations = iter;
            result.converged =
                linalg::normInf(grad) <= 1e3 * options.gradientTolerance;
            return result;
        }
        result.point =
            linalg::axpy(result.point, search.step, direction);
        result.value = search.value;
        result.iterations = iter + 1;
    }
    return result;
}

MinimizeResult
newtonMinimize(const DifferentiableFunction &objective,
               const Vector &start, const MinimizeOptions &options)
{
    MinimizeResult result;
    result.point = start;
    result.value = objective.value(start);
    REF_REQUIRE(std::isfinite(result.value),
                "Newton must start inside the domain");

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        const Vector grad = objective.gradient(result.point);
        if (linalg::normInf(grad) <= options.gradientTolerance) {
            result.converged = true;
            result.iterations = iter;
            return result;
        }

        linalg::Matrix hessian =
            finiteDifferenceHessian(objective, result.point, grad);

        // Ridge-regularize until the factorization succeeds so the
        // Newton step is guaranteed to descend.
        Vector direction;
        double ridge = 0;
        for (int attempt = 0; attempt < 12; ++attempt) {
            try {
                linalg::Matrix damped = hessian;
                if (ridge > 0) {
                    for (std::size_t i = 0; i < damped.rows(); ++i)
                        damped(i, i) += ridge;
                }
                direction = linalg::Cholesky(damped).solve(
                    linalg::scale(grad, -1.0));
                break;
            } catch (const FatalError &) {
                ridge = ridge == 0 ? 1e-8 * (1 + hessian.maxAbs())
                                   : ridge * 100;
            }
        }
        if (direction.empty() ||
            linalg::dot(grad, direction) >= 0) {
            direction = linalg::scale(grad, -1.0);
        }

        const double slope = linalg::dot(grad, direction);
        const auto search = backtrackingLineSearch(
            objective, result.point, direction, result.value, slope,
            options.lineSearch);
        if (!search.accepted) {
            result.iterations = iter;
            result.converged =
                linalg::normInf(grad) <= 1e3 * options.gradientTolerance;
            return result;
        }
        result.point =
            linalg::axpy(result.point, search.step, direction);
        result.value = search.value;
        result.iterations = iter + 1;
    }
    return result;
}

} // namespace ref::solver
