/**
 * @file
 * One-dimensional solvers: Brent minimization and bisection root
 * finding. Used for strategic best-response searches (Eq. 15 with
 * two resources reduces to one free variable) and for boundary
 * crossings of the Edgeworth-box regions.
 */

#ifndef REF_SOLVER_SCALAR_HH
#define REF_SOLVER_SCALAR_HH

#include <functional>

namespace ref::solver {

/** Result of a scalar minimization or root find. */
struct ScalarResult
{
    double x = 0;
    double value = 0;
    int iterations = 0;
    bool converged = false;
};

/**
 * Minimize a unimodal function on [lo, hi] with Brent's method
 * (golden-section plus parabolic interpolation).
 */
ScalarResult brentMinimize(const std::function<double(double)> &fn,
                           double lo, double hi, double tolerance = 1e-10,
                           int max_iterations = 200);

/**
 * Find a root of a continuous function on [lo, hi] by bisection.
 * @pre fn(lo) and fn(hi) must have opposite signs (or one be zero).
 */
ScalarResult bisectRoot(const std::function<double(double)> &fn,
                        double lo, double hi, double tolerance = 1e-12,
                        int max_iterations = 200);

} // namespace ref::solver

#endif // REF_SOLVER_SCALAR_HH
