#include "barrier.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ref::solver {

namespace {

/** t*f0(y) - sum log(-g_k(y)), +inf outside the strict interior. */
class BarrierObjective : public DifferentiableFunction
{
  public:
    BarrierObjective(const ConstrainedProgram &program, double t)
        : program_(program), t_(t)
    {}

    double
    value(const Vector &point) const override
    {
        double total = t_ * program_.objective->value(point);
        for (const auto &g : program_.inequalities) {
            const double gv = g->value(point);
            if (gv >= 0)
                return std::numeric_limits<double>::infinity();
            total -= std::log(-gv);
        }
        return total;
    }

    Vector
    gradient(const Vector &point) const override
    {
        Vector grad =
            linalg::scale(program_.objective->gradient(point), t_);
        for (const auto &g : program_.inequalities) {
            const double gv = g->value(point);
            REF_ASSERT(gv < 0, "gradient requested outside interior");
            grad = linalg::axpy(grad, -1.0 / gv, g->gradient(point));
        }
        return grad;
    }

  private:
    const ConstrainedProgram &program_;
    double t_;
};

} // namespace

ConstrainedResult
solveBarrier(const ConstrainedProgram &program, const Vector &start,
             const BarrierOptions &options)
{
    REF_REQUIRE(program.objective != nullptr, "program needs an objective");
    REF_REQUIRE(program.equalities.empty(),
                "barrier method does not support equality constraints; "
                "use solvePenalty");
    for (std::size_t k = 0; k < program.inequalities.size(); ++k) {
        const double gv = program.inequalities[k]->value(start);
        REF_REQUIRE(gv < 0, "start point violates constraint " << k
                                << " (g = " << gv << ")");
    }

    ConstrainedResult result;
    result.point = start;

    const double m =
        static_cast<double>(std::max<std::size_t>(
            program.inequalities.size(), 1));
    double t = options.initialT;
    while (true) {
        BarrierObjective objective(program, t);
        const auto sub =
            newtonMinimize(objective, result.point, options.inner);
        result.point = sub.point;
        ++result.outerIterations;

        result.objectiveValue = program.objective->value(result.point);
        result.maxViolation =
            maxConstraintViolation(program, result.point);
        if (m / t <= options.dualityGapTolerance) {
            result.converged = true;
            return result;
        }
        t *= options.tGrowth;
        // Guard against a run-away outer loop if tolerances are odd.
        if (result.outerIterations > 200)
            return result;
    }
}

} // namespace ref::solver
