/**
 * @file
 * Quadratic-penalty solver for smooth constrained programs.
 *
 * The fairness-constrained programs can have feasible sets with an
 * empty interior (e.g., envy-freeness binds with equality for
 * symmetric agents), which rules out interior-point methods. The
 * exterior quadratic penalty converges to such boundary solutions
 * and also handles equality constraints (the explicit Pareto
 * condition of Eq. 11) directly.
 */

#ifndef REF_SOLVER_PENALTY_HH
#define REF_SOLVER_PENALTY_HH

#include "solver/descent.hh"
#include "solver/program.hh"

namespace ref::solver {

/** Options for the penalty method. */
struct PenaltyOptions
{
    double initialWeight = 10.0;     //!< First penalty weight mu.
    double weightGrowth = 10.0;      //!< mu multiplier per outer step.
    double maxWeight = 1e9;
    double violationTolerance = 1e-7;
    MinimizeOptions inner;           //!< Inner Newton options.
};

/**
 * Solve a constrained program by minimizing
 * f0 + mu * sum max(0, g_k)^2 + mu * sum h_l^2 for increasing mu,
 * warm-starting each subproblem at the previous solution.
 */
ConstrainedResult solvePenalty(const ConstrainedProgram &program,
                               const Vector &start,
                               const PenaltyOptions &options = {});

} // namespace ref::solver

#endif // REF_SOLVER_PENALTY_HH
