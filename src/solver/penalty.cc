#include "penalty.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ref::solver {

double
maxConstraintViolation(const ConstrainedProgram &program,
                       const Vector &point)
{
    double violation = 0;
    for (const auto &g : program.inequalities)
        violation = std::max(violation, g->value(point));
    for (const auto &h : program.equalities)
        violation = std::max(violation, std::abs(h->value(point)));
    return violation;
}

namespace {

/** The penalized objective for one fixed weight mu. */
class PenalizedObjective : public DifferentiableFunction
{
  public:
    PenalizedObjective(const ConstrainedProgram &program, double weight)
        : program_(program), weight_(weight)
    {}

    double
    value(const Vector &point) const override
    {
        double total = program_.objective->value(point);
        for (const auto &g : program_.inequalities) {
            const double gv = g->value(point);
            if (gv > 0)
                total += weight_ * gv * gv;
        }
        for (const auto &h : program_.equalities) {
            const double hv = h->value(point);
            total += weight_ * hv * hv;
        }
        return total;
    }

    Vector
    gradient(const Vector &point) const override
    {
        Vector grad = program_.objective->gradient(point);
        for (const auto &g : program_.inequalities) {
            const double gv = g->value(point);
            if (gv > 0)
                grad = linalg::axpy(grad, 2.0 * weight_ * gv,
                                    g->gradient(point));
        }
        for (const auto &h : program_.equalities) {
            const double hv = h->value(point);
            grad = linalg::axpy(grad, 2.0 * weight_ * hv,
                                h->gradient(point));
        }
        return grad;
    }

  private:
    const ConstrainedProgram &program_;
    double weight_;
    };

} // namespace

ConstrainedResult
solvePenalty(const ConstrainedProgram &program, const Vector &start,
             const PenaltyOptions &options)
{
    REF_REQUIRE(program.objective != nullptr, "program needs an objective");

    ConstrainedResult result;
    result.point = start;

    double weight = options.initialWeight;
    while (true) {
        PenalizedObjective penalized(program, weight);
        // Loosen the inner gradient tolerance in step with the
        // penalty scale; the subproblem conditioning grows with mu.
        MinimizeOptions inner = options.inner;
        inner.gradientTolerance =
            std::max(inner.gradientTolerance, 1e-10 * weight);
        const auto sub = newtonMinimize(penalized, result.point, inner);
        result.point = sub.point;
        ++result.outerIterations;

        result.maxViolation = maxConstraintViolation(program, result.point);
        result.objectiveValue = program.objective->value(result.point);
        if (result.maxViolation <= options.violationTolerance) {
            result.converged = true;
            return result;
        }
        if (weight >= options.maxWeight)
            return result;
        weight *= options.weightGrowth;
    }
}

} // namespace ref::solver
