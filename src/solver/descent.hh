/**
 * @file
 * Unconstrained smooth minimization: gradient descent and a damped
 * Newton method with finite-difference Hessians.
 *
 * Problem sizes in REF are tiny (N agents x R resources variables),
 * so a dense finite-difference Hessian plus Cholesky is cheap and
 * gives quadratic local convergence; gradient descent remains as a
 * simpler fallback and as the inner engine for ill-conditioned
 * penalty subproblems.
 */

#ifndef REF_SOLVER_DESCENT_HH
#define REF_SOLVER_DESCENT_HH

#include "solver/function.hh"
#include "solver/line_search.hh"

namespace ref::solver {

/** Common result type for the unconstrained minimizers. */
struct MinimizeResult
{
    Vector point;          //!< Best point found.
    double value = 0;      //!< Objective at that point.
    int iterations = 0;
    bool converged = false;
};

/** Options for the unconstrained minimizers. */
struct MinimizeOptions
{
    int maxIterations = 500;
    double gradientTolerance = 1e-9;  //!< Stop when ||g||_inf below.
    LineSearchOptions lineSearch;
};

/**
 * Minimize with steepest descent plus backtracking.
 *
 * The objective may return +inf outside its implicit domain; the
 * line search backtracks into the domain, so the start point must be
 * interior.
 */
MinimizeResult gradientDescent(const DifferentiableFunction &objective,
                               const Vector &start,
                               const MinimizeOptions &options = {});

/**
 * Minimize with a damped Newton method.
 *
 * The Hessian is built by forward differences of the analytic
 * gradient and regularized (diagonal ridge) until it is positive
 * definite, so the search direction is always a descent direction.
 */
MinimizeResult newtonMinimize(const DifferentiableFunction &objective,
                              const Vector &start,
                              const MinimizeOptions &options = {});

} // namespace ref::solver

#endif // REF_SOLVER_DESCENT_HH
