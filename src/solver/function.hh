/**
 * @file
 * Function interfaces for the optimization substrate.
 *
 * The paper solves its alternative mechanisms (Nash welfare with and
 * without fairness constraints, equal slowdown) with geometric
 * programming via CVX. We replace CVX with our own solvers; every
 * program is expressed through this interface after the log change
 * of variables that makes it convex.
 */

#ifndef REF_SOLVER_FUNCTION_HH
#define REF_SOLVER_FUNCTION_HH

#include <functional>

#include "linalg/matrix.hh"

namespace ref::solver {

using linalg::Vector;

/** A scalar function of a vector with a first derivative. */
class DifferentiableFunction
{
  public:
    virtual ~DifferentiableFunction() = default;

    /** Evaluate the function. */
    virtual double value(const Vector &point) const = 0;

    /** Evaluate the gradient. */
    virtual Vector gradient(const Vector &point) const = 0;
};

/**
 * Adapter wrapping closures as a DifferentiableFunction.
 *
 * When no gradient closure is supplied, a central finite difference
 * of the value closure is used.
 */
class LambdaFunction : public DifferentiableFunction
{
  public:
    using ValueFn = std::function<double(const Vector &)>;
    using GradientFn = std::function<Vector(const Vector &)>;

    /** Analytic value and gradient. */
    LambdaFunction(ValueFn value, GradientFn gradient);

    /** Value only; gradient by central finite differences. */
    explicit LambdaFunction(ValueFn value);

    double value(const Vector &point) const override;
    Vector gradient(const Vector &point) const override;

  private:
    ValueFn valueFn_;
    GradientFn gradientFn_;
};

/**
 * Central-difference numerical gradient of an arbitrary callable.
 * Step size scales with the coordinate magnitude.
 */
Vector numericalGradient(
    const std::function<double(const Vector &)> &fn, const Vector &point,
    double step = 1e-6);

} // namespace ref::solver

#endif // REF_SOLVER_FUNCTION_HH
