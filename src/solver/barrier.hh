/**
 * @file
 * Log-barrier interior-point solver for inequality-constrained
 * smooth convex programs.
 *
 * Used when a strictly feasible start exists (e.g., welfare
 * maximization subject only to capacity); the quadratic penalty
 * method (penalty.hh) covers programs whose feasible interior may be
 * empty.
 */

#ifndef REF_SOLVER_BARRIER_HH
#define REF_SOLVER_BARRIER_HH

#include "solver/descent.hh"
#include "solver/program.hh"

namespace ref::solver {

/** Options for the barrier method. */
struct BarrierOptions
{
    double initialT = 1.0;       //!< Initial barrier sharpness.
    double tGrowth = 20.0;       //!< Multiplier per centering step.
    double dualityGapTolerance = 1e-8;  //!< Stop when m/t below this.
    MinimizeOptions inner;
};

/**
 * Solve min f0 s.t. g_k <= 0 with the classic barrier sequence
 * min t*f0 - sum log(-g_k), t increasing geometrically.
 *
 * @param start Must be strictly feasible: g_k(start) < 0 for all k.
 *              Equality constraints are not supported here; use
 *              solvePenalty for those.
 *
 * Throws FatalError if @p start is infeasible or the program has
 * equality constraints.
 */
ConstrainedResult solveBarrier(const ConstrainedProgram &program,
                               const Vector &start,
                               const BarrierOptions &options = {});

} // namespace ref::solver

#endif // REF_SOLVER_BARRIER_HH
