/**
 * @file
 * Nelder-Mead derivative-free simplex minimization.
 *
 * Fallback engine for objectives that are awkward to differentiate,
 * e.g., a strategic agent's utility-from-lying over the elasticity
 * simplex with more than two resources (Eq. 15).
 */

#ifndef REF_SOLVER_NELDER_MEAD_HH
#define REF_SOLVER_NELDER_MEAD_HH

#include <functional>

#include "linalg/matrix.hh"

namespace ref::solver {

/** Options for the Nelder-Mead simplex search. */
struct NelderMeadOptions
{
    int maxIterations = 2000;
    double tolerance = 1e-12;    //!< Spread of simplex values to stop.
    /**
     * Maximum simplex diameter (relative to the best vertex) to
     * stop. Both criteria must hold: a symmetric objective can give
     * equal vertex values across a wide simplex.
     */
    double sizeTolerance = 1e-7;
    double initialScale = 0.1;   //!< Relative size of the start simplex.
};

/** Result of a Nelder-Mead run. */
struct NelderMeadResult
{
    linalg::Vector point;
    double value = 0;
    int iterations = 0;
    bool converged = false;
};

/**
 * Minimize @p fn starting from @p start. The objective may return
 * +inf to mark infeasible points (the simplex contracts away).
 */
NelderMeadResult nelderMead(
    const std::function<double(const linalg::Vector &)> &fn,
    const linalg::Vector &start, const NelderMeadOptions &options = {});

} // namespace ref::solver

#endif // REF_SOLVER_NELDER_MEAD_HH
