/**
 * @file
 * Smooth constrained program description shared by the penalty and
 * barrier solvers.
 */

#ifndef REF_SOLVER_PROGRAM_HH
#define REF_SOLVER_PROGRAM_HH

#include <memory>
#include <vector>

#include "solver/function.hh"

namespace ref::solver {

/**
 * minimize f0(y)
 * subject to g_k(y) <= 0  (inequalities)
 *            h_l(y) == 0  (equalities)
 *
 * All functions smooth; for the REF mechanisms they are convex after
 * the log change of variables (linear fairness constraints plus
 * log-sum-exp capacity constraints).
 */
struct ConstrainedProgram
{
    std::shared_ptr<const DifferentiableFunction> objective;
    std::vector<std::shared_ptr<const DifferentiableFunction>>
        inequalities;
    std::vector<std::shared_ptr<const DifferentiableFunction>>
        equalities;
};

/** Result of a constrained solve. */
struct ConstrainedResult
{
    Vector point;
    double objectiveValue = 0;
    double maxViolation = 0;   //!< Largest constraint violation.
    int outerIterations = 0;
    bool converged = false;
};

/** Largest violation max(g_k(y), |h_l(y)|) over all constraints. */
double maxConstraintViolation(const ConstrainedProgram &program,
                              const Vector &point);

} // namespace ref::solver

#endif // REF_SOLVER_PROGRAM_HH
