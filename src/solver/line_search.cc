#include "line_search.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::solver {

LineSearchResult
backtrackingLineSearch(const DifferentiableFunction &objective,
                       const Vector &point, const Vector &direction,
                       double value_at_point,
                       double directional_derivative,
                       const LineSearchOptions &options)
{
    REF_REQUIRE(directional_derivative < 0,
                "line search needs a descent direction (g.d = "
                    << directional_derivative << ")");

    LineSearchResult result;
    double step = options.initialStep;
    for (int attempt = 0; attempt < options.maxBacktracks; ++attempt) {
        const Vector candidate = linalg::axpy(point, step, direction);
        const double value = objective.value(candidate);
        const double target = value_at_point +
            options.armijoSlope * step * directional_derivative;
        if (std::isfinite(value) && value <= target) {
            result.step = step;
            result.value = value;
            result.accepted = true;
            return result;
        }
        step *= options.shrink;
    }
    return result;
}

} // namespace ref::solver
