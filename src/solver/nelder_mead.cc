#include "nelder_mead.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace ref::solver {

NelderMeadResult
nelderMead(const std::function<double(const linalg::Vector &)> &fn,
           const linalg::Vector &start, const NelderMeadOptions &options)
{
    using linalg::Vector;
    const std::size_t n = start.size();
    REF_REQUIRE(n > 0, "Nelder-Mead needs at least one dimension");

    // Standard coefficients: reflection, expansion, contraction,
    // shrink.
    constexpr double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;

    std::vector<Vector> simplex(n + 1, start);
    for (std::size_t i = 0; i < n; ++i) {
        const double step =
            options.initialScale * std::max(1.0, std::abs(start[i]));
        simplex[i + 1][i] += step;
    }

    std::vector<double> values(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        values[i] = fn(simplex[i]);

    std::vector<std::size_t> order(n + 1);
    NelderMeadResult result;

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return values[a] < values[b];
                  });
        const std::size_t best = order.front();
        const std::size_t worst = order.back();
        const std::size_t second_worst = order[n - 1];

        result.iterations = iter;
        double diameter = 0;
        for (std::size_t i = 0; i <= n; ++i) {
            diameter = std::max(
                diameter, linalg::normInf(linalg::subtract(
                              simplex[i], simplex[best])));
        }
        const double scale =
            std::max(1.0, linalg::normInf(simplex[best]));
        if (std::isfinite(values[best]) &&
            std::abs(values[worst] - values[best]) <=
                options.tolerance *
                    (std::abs(values[best]) + options.tolerance) &&
            diameter <= options.sizeTolerance * scale) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        Vector centroid(n, 0.0);
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            centroid = linalg::add(centroid, simplex[i]);
        }
        centroid = linalg::scale(centroid, 1.0 / static_cast<double>(n));

        auto blend = [&](double t) {
            return linalg::axpy(centroid, t,
                                linalg::subtract(centroid,
                                                 simplex[worst]));
        };

        const Vector reflected = blend(alpha);
        const double f_reflected = fn(reflected);

        if (f_reflected < values[best]) {
            const Vector expanded = blend(gamma);
            const double f_expanded = fn(expanded);
            if (f_expanded < f_reflected) {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if (f_reflected < values[second_worst]) {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            const Vector contracted = blend(-rho);
            const double f_contracted = fn(contracted);
            if (f_contracted < values[worst]) {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    simplex[i] = linalg::axpy(
                        simplex[best], sigma,
                        linalg::subtract(simplex[i], simplex[best]));
                    values[i] = fn(simplex[i]);
                }
            }
        }
    }

    const std::size_t best = static_cast<std::size_t>(
        std::min_element(values.begin(), values.end()) - values.begin());
    result.point = simplex[best];
    result.value = values[best];
    return result;
}

} // namespace ref::solver
