#include "scalar.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::solver {

ScalarResult
brentMinimize(const std::function<double(double)> &fn, double lo,
              double hi, double tolerance, int max_iterations)
{
    REF_REQUIRE(lo < hi, "empty bracket [" << lo << ", " << hi << "]");

    constexpr double golden = 0.3819660112501051;
    double a = lo, b = hi;
    double x = a + golden * (b - a);
    double w = x, v = x;
    double fx = fn(x), fw = fx, fv = fx;
    double d = 0, e = 0;

    ScalarResult result;
    for (int iter = 0; iter < max_iterations; ++iter) {
        const double mid = 0.5 * (a + b);
        const double tol1 = tolerance * std::abs(x) + 1e-15;
        const double tol2 = 2 * tol1;
        if (std::abs(x - mid) <= tol2 - 0.5 * (b - a)) {
            result.converged = true;
            result.iterations = iter;
            break;
        }

        bool use_golden = true;
        if (std::abs(e) > tol1) {
            // Try a parabolic step through x, v, w.
            const double r = (x - w) * (fx - fv);
            double q = (x - v) * (fx - fw);
            double p = (x - v) * q - (x - w) * r;
            q = 2 * (q - r);
            if (q > 0)
                p = -p;
            q = std::abs(q);
            const double e_prev = e;
            e = d;
            if (std::abs(p) < std::abs(0.5 * q * e_prev) &&
                p > q * (a - x) && p < q * (b - x)) {
                d = p / q;
                const double u = x + d;
                if (u - a < tol2 || b - u < tol2)
                    d = mid > x ? tol1 : -tol1;
                use_golden = false;
            }
        }
        if (use_golden) {
            e = (x < mid ? b : a) - x;
            d = golden * e;
        }

        const double u =
            std::abs(d) >= tol1 ? x + d : x + (d > 0 ? tol1 : -tol1);
        const double fu = fn(u);
        if (fu <= fx) {
            if (u < x)
                b = x;
            else
                a = x;
            v = w; fv = fw;
            w = x; fw = fx;
            x = u; fx = fu;
        } else {
            if (u < x)
                a = u;
            else
                b = u;
            if (fu <= fw || w == x) {
                v = w; fv = fw;
                w = u; fw = fu;
            } else if (fu <= fv || v == x || v == w) {
                v = u; fv = fu;
            }
        }
        result.iterations = iter + 1;
    }

    result.x = x;
    result.value = fx;
    return result;
}

ScalarResult
bisectRoot(const std::function<double(double)> &fn, double lo, double hi,
           double tolerance, int max_iterations)
{
    REF_REQUIRE(lo <= hi, "empty bracket [" << lo << ", " << hi << "]");
    double f_lo = fn(lo);
    double f_hi = fn(hi);
    REF_REQUIRE(f_lo * f_hi <= 0,
                "bisection needs a sign change: f(" << lo << ") = " << f_lo
                    << ", f(" << hi << ") = " << f_hi);

    ScalarResult result;
    if (f_lo == 0) {
        result = {lo, 0, 0, true};
        return result;
    }
    if (f_hi == 0) {
        result = {hi, 0, 0, true};
        return result;
    }

    for (int iter = 0; iter < max_iterations; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double f_mid = fn(mid);
        result.iterations = iter + 1;
        if (f_mid == 0 || hi - lo < tolerance) {
            result.x = mid;
            result.value = f_mid;
            result.converged = true;
            return result;
        }
        if (f_lo * f_mid < 0) {
            hi = mid;
        } else {
            lo = mid;
            f_lo = f_mid;
        }
    }
    result.x = 0.5 * (lo + hi);
    result.value = fn(result.x);
    return result;
}

} // namespace ref::solver
