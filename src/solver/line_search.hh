/**
 * @file
 * Backtracking (Armijo) line search shared by the descent methods.
 */

#ifndef REF_SOLVER_LINE_SEARCH_HH
#define REF_SOLVER_LINE_SEARCH_HH

#include <functional>

#include "solver/function.hh"

namespace ref::solver {

/** Tuning knobs for backtracking line search. */
struct LineSearchOptions
{
    double initialStep = 1.0;
    double shrink = 0.5;         //!< Step multiplier per backtrack.
    double armijoSlope = 1e-4;   //!< Sufficient-decrease parameter.
    int maxBacktracks = 60;
};

/** Outcome of a line search. */
struct LineSearchResult
{
    double step = 0;       //!< Accepted step length (0 on failure).
    double value = 0;      //!< Objective value at the accepted point.
    bool accepted = false;
};

/**
 * Find a step t along @p direction from @p point satisfying the
 * Armijo condition f(x + t d) <= f(x) + c t g.d.
 *
 * The objective may return +inf outside its domain (e.g., a barrier
 * function); such steps are simply backtracked past.
 *
 * @param directional_derivative Must be negative (descent direction).
 */
LineSearchResult backtrackingLineSearch(
    const DifferentiableFunction &objective, const Vector &point,
    const Vector &direction, double value_at_point,
    double directional_derivative,
    const LineSearchOptions &options = {});

} // namespace ref::solver

#endif // REF_SOLVER_LINE_SEARCH_HH
