#include "function.hh"

#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace ref::solver {

LambdaFunction::LambdaFunction(ValueFn value, GradientFn gradient)
    : valueFn_(std::move(value)), gradientFn_(std::move(gradient))
{
    REF_REQUIRE(static_cast<bool>(valueFn_), "null value closure");
    REF_REQUIRE(static_cast<bool>(gradientFn_), "null gradient closure");
}

LambdaFunction::LambdaFunction(ValueFn value)
    : valueFn_(std::move(value))
{
    REF_REQUIRE(static_cast<bool>(valueFn_), "null value closure");
    gradientFn_ = [this](const Vector &point) {
        return numericalGradient(valueFn_, point);
    };
}

double
LambdaFunction::value(const Vector &point) const
{
    return valueFn_(point);
}

Vector
LambdaFunction::gradient(const Vector &point) const
{
    return gradientFn_(point);
}

Vector
numericalGradient(const std::function<double(const Vector &)> &fn,
                  const Vector &point, double step)
{
    Vector grad(point.size());
    Vector probe = point;
    for (std::size_t i = 0; i < point.size(); ++i) {
        const double h = step * std::max(1.0, std::abs(point[i]));
        const double saved = probe[i];
        probe[i] = saved + h;
        const double above = fn(probe);
        probe[i] = saved - h;
        const double below = fn(probe);
        probe[i] = saved;
        grad[i] = (above - below) / (2.0 * h);
    }
    return grad;
}

} // namespace ref::solver
