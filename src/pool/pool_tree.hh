/**
 * @file
 * Hierarchical fair-share pool tree with sharded leaf registries.
 *
 * The flat AgentRegistry keeps one global per-resource denominator,
 * so every epoch's cost is bounded by the live population. The pool
 * tree applies REF recursively instead: pools form a weighted tree
 * rooted at "/", every agent lives in exactly one pool, and an
 * agent's claim on resource r is its re-scaled elasticity (Eq. 12)
 * multiplied by the product of its ancestor pools' weights (the
 * pool's "gain"). Resource r is then divided in proportion to these
 * effective claims — the flat REF closed form (Eq. 13) over the
 * effective values:
 *
 *     share_i[r] = eff_i[r] / D[r] * C_r,
 *     eff_i[r]   = gain(pool(i)) * rescaled_i[r],
 *     D[r]       = sum_j eff_j[r].
 *
 * With all-unit weights every gain is exactly 1.0 and IEEE-754
 * multiplication by 1.0 is exact, so eff_i == rescaled_i bit for bit
 * and the pooled allocation is bit-identical to the flat solve.
 *
 * Incrementality: every tree node keeps the per-resource ExactSum of
 * the effective claims in its subtree, and the leaf agent registry is
 * split into S hash shards that each keep the same per-resource
 * ExactSum over their resident agents. An admit / update / depart /
 * re-assign therefore touches exactly one shard plus the root-to-leaf
 * path — O(depth x resources) ExactSum operations, independent of the
 * population. Because ExactSums hold the exact real sum as
 * non-overlapping partials, merging the shard sums (or summing the
 * subtree sums bottom-up) rounds to the very same double as one flat
 * from-scratch sum over all agents, in any order — the property
 * selfCheck() asserts three ways (incremental root vs shard merge vs
 * scratch rebuild) plus a bitwise dense-allocation compare.
 */

#ifndef REF_POOL_POOL_TREE_HH
#define REF_POOL_POOL_TREE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.hh"
#include "core/allocation.hh"
#include "core/resource.hh"
#include "util/exact_sum.hh"

namespace ref::pool {

/** Canonical path of the root pool. */
inline constexpr const char *kRootPath = "/";

/** Maximum pool-tree depth (segments below the root). */
inline constexpr std::size_t kMaxPoolDepth = 16;

/** Maximum length of a pool path in characters. */
inline constexpr std::size_t kMaxPoolPathLength = 256;

/** One agent resident in a pool-tree shard. */
struct PooledAgent
{
    std::string name;
    /** Reported elasticities, as admitted/updated. */
    linalg::Vector elasticities;
    /** Re-scaled to unit sum (Eq. 12). */
    linalg::Vector rescaled;
    /** gain(pool) * rescaled — the values the ExactSums hold. */
    linalg::Vector effective;
    std::uint64_t admittedEpoch = 0;
    /** Global admission sequence number (dense-allocation order). */
    std::uint64_t seq = 0;
    /** Node id of the owning pool. */
    std::uint32_t pool = 0;
};

/** Read-only view of one pool for snapshots, metrics and QUERY. */
struct PoolView
{
    std::string path;
    double weight = 1.0;
    /** Product of weights from the root down to this pool. */
    double gain = 1.0;
    /** Live agents in this pool's whole subtree. */
    std::uint64_t agents = 0;
    /** Live agents directly resident in this pool. */
    std::uint64_t directAgents = 0;
    std::uint64_t createdEpoch = 0;
};

/**
 * Weighted pool tree with per-node exact subtree denominators and
 * hash-sharded leaf agent storage.
 *
 * Not thread-safe on its own; the AllocationService facade
 * serializes mutation, exactly as it does for the flat registry.
 */
class PoolTree
{
  public:
    /** @pre shards >= 1. */
    explicit PoolTree(core::SystemCapacity capacity,
                      std::size_t shards = 8);

    /**
     * Create a pool at @p path ("a" or "a/b"; the parent must already
     * exist, the root "/" always does). Creating an existing pool
     * with the identical weight is a no-op (idempotent, so racing
     * clients and journal replays converge); a differing weight
     * throws. Weights are fixed at creation. Throws FatalError on
     * malformed paths, unknown parents, non-positive / non-finite
     * weights, or excessive depth.
     */
    void createPool(const std::string &path, double weight,
                    std::uint64_t epoch = 0);

    bool hasPool(const std::string &path) const;

    /** Number of pools, including the root. */
    std::size_t poolCount() const { return nodes_.size(); }

    /** Deepest pool level (root = 0). */
    std::size_t maxDepth() const { return maxDepth_; }

    /**
     * Admit an agent into @p poolPath (default: the root). Same
     * validation and error messages as the flat registry, plus an
     * unknown-pool error.
     */
    void admit(const std::string &name,
               const linalg::Vector &elasticities,
               const std::string &poolPath = kRootPath,
               std::uint64_t epoch = 0);

    /** Replace an agent's elasticities. Throws when unknown. */
    void update(const std::string &name,
                const linalg::Vector &elasticities);

    /** Move an agent to @p poolPath. Throws when either is unknown. */
    void assign(const std::string &name, const std::string &poolPath);

    /** Remove an agent. Throws when unknown. */
    void depart(const std::string &name);

    std::size_t size() const { return agentCount_; }
    bool empty() const { return agentCount_ == 0; }
    bool contains(const std::string &name) const;

    /** Owning pool path of @p name. Throws when unknown. */
    const std::string &poolOf(const std::string &name) const;

    /** Path of the pool with node id @p node (PooledAgent::pool). */
    const std::string &poolPath(std::uint32_t node) const
    {
        return nodes_[node].path;
    }

    const core::SystemCapacity &capacity() const { return capacity_; }
    std::size_t shards() const { return shards_.size(); }

    /**
     * Incrementally maintained root denominator D[r] — the correctly
     * rounded sum of every live agent's effective claim.
     */
    double denominator(std::size_t r) const;

    /**
     * Agent @p name's current share of each resource, computed lazily
     * from its effective claim and the root denominators: O(R), no
     * dense allocation. @pre the agent exists.
     */
    linalg::Vector sharesOf(const std::string &name) const;

    /**
     * Fraction of each resource's capacity held collectively by the
     * subtree rooted at @p path. @pre pool exists; zero vector while
     * the tree is empty.
     */
    linalg::Vector poolShareFractions(const std::string &path) const;

    /** All pools in creation order (root first). */
    std::vector<PoolView> pools() const;

    /** Visit every live agent (shard order — unspecified). */
    template <typename Fn>
    void forEachAgent(Fn &&fn) const
    {
        for (const auto &shard : shards_)
            for (const auto &entry : shard.agents)
                fn(entry.second);
    }

    /**
     * Dense N x R allocation over all live agents in admission
     * order, with the matching names. O(N log N) — verification and
     * small-population use only. @pre !empty().
     */
    core::Allocation allocateDense(
        std::vector<std::string> *names = nullptr) const;

    /**
     * Verification path: rebuild flat per-resource ExactSums from
     * scratch over all live agents and allocate with them.
     * Bit-identical to allocateDense() by construction. @pre !empty().
     */
    core::Allocation allocateFromScratchDense(
        std::vector<std::string> *names = nullptr) const;

    /** The live agents as a core::AgentList (admission order). */
    core::AgentList agentList() const;

    /**
     * The tree-wide bit-identity invariant, checked three ways per
     * resource: the incremental root subtree sum, the merge of the
     * per-shard sums, and a from-scratch flat rebuild must all round
     * to the same double, and the dense incremental allocation must
     * equal the from-scratch one bitwise. O(N) — verification only.
     */
    bool selfCheck() const;

    /** True when every pool's gain is exactly 1.0 (unweighted). */
    bool allUnitGains() const;

    /** Total admits + departs + updates + assigns + pool creates. */
    std::uint64_t churnEvents() const { return churnEvents_; }

    /** Recovery only: restore the lifetime churn counter. */
    void restoreChurnEvents(std::uint64_t events)
    {
        churnEvents_ = events;
    }

  private:
    struct Node
    {
        std::string path;
        std::uint32_t parent = 0;
        double weight = 1.0;
        double gain = 1.0;
        std::uint32_t depth = 0;
        std::uint64_t createdEpoch = 0;
        std::uint64_t agentsInSubtree = 0;
        std::uint64_t directAgents = 0;
        /** Per-resource exact sums of every descendant's effective. */
        std::vector<ExactSum> subtree;
    };

    struct Shard
    {
        std::unordered_map<std::string, PooledAgent> agents;
        /** Per-resource exact sums over this shard's residents. */
        std::vector<ExactSum> sums;
    };

    void validateAgent(const std::string &name,
                       const linalg::Vector &elasticities) const;
    static void validatePath(const std::string &path);
    /** Node id for @p path; throws when the pool does not exist. */
    std::uint32_t resolve(const std::string &path) const;
    Shard &shardFor(const std::string &name);
    const Shard &shardFor(const std::string &name) const;
    PooledAgent &entryOf(const std::string &name);
    const PooledAgent &entryOf(const std::string &name) const;
    /** Add (+1) or subtract (-1) @p effective along root..pool. */
    void applyAlongPath(std::uint32_t pool,
                        const linalg::Vector &effective, int direction);
    linalg::Vector effectiveFor(const linalg::Vector &rescaled,
                                std::uint32_t pool) const;
    /** Live agents sorted by admission sequence. */
    std::vector<const PooledAgent *> denseOrder() const;
    core::Allocation allocateWith(
        const std::vector<const PooledAgent *> &order,
        const std::vector<double> &denominators,
        std::vector<std::string> *names) const;

    core::SystemCapacity capacity_;
    std::vector<Node> nodes_;  //!< Creation order; nodes_[0] is "/".
    std::unordered_map<std::string, std::uint32_t> nodeIndex_;
    std::vector<Shard> shards_;
    std::size_t agentCount_ = 0;
    std::size_t maxDepth_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t churnEvents_ = 0;
};

} // namespace ref::pool

#endif // REF_POOL_POOL_TREE_HH
