#include "pool_tree.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>

#include "util/logging.hh"
#include "util/math.hh"

namespace ref::pool {

PoolTree::PoolTree(core::SystemCapacity capacity, std::size_t shards)
    : capacity_(std::move(capacity))
{
    REF_REQUIRE(shards >= 1, "pool tree needs at least one shard");
    Node root;
    root.path = kRootPath;
    root.subtree.resize(capacity_.count());
    nodeIndex_.emplace(root.path, 0);
    nodes_.push_back(std::move(root));
    shards_.resize(shards);
    for (auto &shard : shards_)
        shard.sums.resize(capacity_.count());
}

void
PoolTree::validatePath(const std::string &path)
{
    REF_REQUIRE(!path.empty(), "pool path must not be empty");
    REF_REQUIRE(path.size() <= kMaxPoolPathLength,
                "pool path exceeds " << kMaxPoolPathLength
                                     << " characters");
    if (path == kRootPath)
        return;
    REF_REQUIRE(path != "_total",
                "pool path '_total' is reserved for the global "
                "fairness series");
    REF_REQUIRE(path.front() != '/' && path.back() != '/',
                "pool path '" << path
                              << "' must not start or end with '/'");
    std::size_t segment = 0;
    std::size_t depth = 1;
    for (char c : path) {
        if (c == '/') {
            REF_REQUIRE(segment > 0, "pool path '"
                                         << path
                                         << "' has an empty segment");
            segment = 0;
            ++depth;
            continue;
        }
        const auto uc = static_cast<unsigned char>(c);
        REF_REQUIRE(std::isprint(uc) && !std::isspace(uc),
                    "pool path '" << path
                                  << "' contains whitespace or "
                                     "non-printable characters");
        // Paths become CSV cells and metric label values verbatim;
        // keep the characters those syntaxes reserve out entirely.
        REF_REQUIRE(c != ',' && c != '"' && c != '\\' && c != '{' &&
                        c != '}' && c != '=',
                    "pool path '" << path << "' contains '" << c
                                  << "', reserved for exports");
        ++segment;
    }
    REF_REQUIRE(depth <= kMaxPoolDepth,
                "pool path '" << path << "' exceeds the maximum "
                              << "depth of " << kMaxPoolDepth);
}

void
PoolTree::createPool(const std::string &path, double weight,
                     std::uint64_t epoch)
{
    validatePath(path);
    REF_REQUIRE(std::isfinite(weight) && weight > 0,
                "pool '" << path << "' weight " << weight
                         << " must be positive and finite");
    const auto found = nodeIndex_.find(path);
    if (found != nodeIndex_.end()) {
        // Idempotent re-create: racing clients and journal replays
        // that repeat the same CREATE converge instead of erroring.
        REF_REQUIRE(nodes_[found->second].weight == weight,
                    "pool '" << path << "' already exists with weight "
                             << nodes_[found->second].weight);
        return;
    }
    REF_REQUIRE(path != kRootPath, "the root pool always exists");

    const std::size_t slash = path.rfind('/');
    const std::string parentPath =
        slash == std::string::npos ? kRootPath : path.substr(0, slash);
    const auto parent = nodeIndex_.find(parentPath);
    REF_REQUIRE(parent != nodeIndex_.end(),
                "pool '" << path << "' needs parent '" << parentPath
                         << "' to exist first");

    Node node;
    node.path = path;
    node.parent = parent->second;
    node.weight = weight;
    node.gain = nodes_[parent->second].gain * weight;
    node.depth = nodes_[parent->second].depth + 1;
    node.createdEpoch = epoch;
    node.subtree.resize(capacity_.count());
    REF_REQUIRE(std::isfinite(node.gain) && node.gain > 0,
                "pool '" << path << "' cumulative gain " << node.gain
                         << " is out of range");
    nodeIndex_.emplace(path, static_cast<std::uint32_t>(nodes_.size()));
    maxDepth_ = std::max<std::size_t>(maxDepth_, node.depth);
    nodes_.push_back(std::move(node));
    ++churnEvents_;
}

bool
PoolTree::hasPool(const std::string &path) const
{
    return nodeIndex_.find(path) != nodeIndex_.end();
}

std::uint32_t
PoolTree::resolve(const std::string &path) const
{
    const auto found = nodeIndex_.find(path);
    REF_REQUIRE(found != nodeIndex_.end(),
                "pool '" << path << "' does not exist");
    return found->second;
}

void
PoolTree::validateAgent(const std::string &name,
                        const linalg::Vector &elasticities) const
{
    REF_REQUIRE(!name.empty(), "agent name must not be empty");
    for (char c : name) {
        REF_REQUIRE(!std::isspace(static_cast<unsigned char>(c)),
                    "agent name '" << name
                                   << "' must not contain whitespace");
    }
    REF_REQUIRE(elasticities.size() == capacity_.count(),
                "agent '" << name << "' reports "
                          << elasticities.size()
                          << " elasticities, system has "
                          << capacity_.count() << " resources");
    for (std::size_t r = 0; r < elasticities.size(); ++r) {
        REF_REQUIRE(std::isfinite(elasticities[r]) &&
                        elasticities[r] > 0,
                    "agent '" << name << "' reports elasticity "
                              << elasticities[r] << " for resource "
                              << r
                              << "; elasticities must be positive "
                                 "and finite");
    }
}

PoolTree::Shard &
PoolTree::shardFor(const std::string &name)
{
    return shards_[std::hash<std::string>{}(name) % shards_.size()];
}

const PoolTree::Shard &
PoolTree::shardFor(const std::string &name) const
{
    return shards_[std::hash<std::string>{}(name) % shards_.size()];
}

PooledAgent &
PoolTree::entryOf(const std::string &name)
{
    auto &shard = shardFor(name);
    const auto found = shard.agents.find(name);
    REF_REQUIRE(found != shard.agents.end(),
                "agent '" << name << "' is not registered");
    return found->second;
}

const PooledAgent &
PoolTree::entryOf(const std::string &name) const
{
    const auto &shard = shardFor(name);
    const auto found = shard.agents.find(name);
    REF_REQUIRE(found != shard.agents.end(),
                "agent '" << name << "' is not registered");
    return found->second;
}

linalg::Vector
PoolTree::effectiveFor(const linalg::Vector &rescaled,
                       std::uint32_t pool) const
{
    // gain == 1.0 multiplies exactly, so unweighted trees keep
    // effective bit-identical to the flat registry's rescaled values.
    const double gain = nodes_[pool].gain;
    linalg::Vector effective(rescaled.size());
    for (std::size_t r = 0; r < rescaled.size(); ++r)
        effective[r] = gain * rescaled[r];
    return effective;
}

void
PoolTree::applyAlongPath(std::uint32_t pool,
                         const linalg::Vector &effective, int direction)
{
    std::uint32_t node = pool;
    for (;;) {
        auto &sums = nodes_[node].subtree;
        for (std::size_t r = 0; r < effective.size(); ++r) {
            if (direction > 0)
                sums[r].add(effective[r]);
            else
                sums[r].subtract(effective[r]);
        }
        if (node == 0)
            break;
        node = nodes_[node].parent;
    }
}

void
PoolTree::admit(const std::string &name,
                const linalg::Vector &elasticities,
                const std::string &poolPath, std::uint64_t epoch)
{
    validateAgent(name, elasticities);
    REF_REQUIRE(!contains(name),
                "agent '" << name << "' is already registered");
    const std::uint32_t pool = resolve(poolPath);

    PooledAgent agent;
    agent.name = name;
    agent.elasticities = elasticities;
    agent.rescaled = normalizeToUnitSum(elasticities);
    agent.effective = effectiveFor(agent.rescaled, pool);
    agent.admittedEpoch = epoch;
    agent.seq = nextSeq_++;
    agent.pool = pool;

    auto &shard = shardFor(name);
    for (std::size_t r = 0; r < agent.effective.size(); ++r)
        shard.sums[r].add(agent.effective[r]);
    applyAlongPath(pool, agent.effective, +1);
    for (std::uint32_t node = pool;;) {
        ++nodes_[node].agentsInSubtree;
        if (node == 0)
            break;
        node = nodes_[node].parent;
    }
    ++nodes_[pool].directAgents;
    shard.agents.emplace(name, std::move(agent));
    ++agentCount_;
    ++churnEvents_;
}

void
PoolTree::update(const std::string &name,
                 const linalg::Vector &elasticities)
{
    validateAgent(name, elasticities);
    PooledAgent &agent = entryOf(name);
    auto &shard = shardFor(name);
    const linalg::Vector rescaled = normalizeToUnitSum(elasticities);
    const linalg::Vector effective = effectiveFor(rescaled, agent.pool);
    for (std::size_t r = 0; r < effective.size(); ++r) {
        shard.sums[r].subtract(agent.effective[r]);
        shard.sums[r].add(effective[r]);
    }
    applyAlongPath(agent.pool, agent.effective, -1);
    applyAlongPath(agent.pool, effective, +1);
    agent.elasticities = elasticities;
    agent.rescaled = rescaled;
    agent.effective = effective;
    ++churnEvents_;
}

void
PoolTree::assign(const std::string &name, const std::string &poolPath)
{
    const std::uint32_t pool = resolve(poolPath);
    PooledAgent &agent = entryOf(name);
    if (agent.pool == pool)
        return; // Idempotent: already resident.
    auto &shard = shardFor(name);

    const linalg::Vector effective = effectiveFor(agent.rescaled, pool);
    for (std::size_t r = 0; r < effective.size(); ++r) {
        shard.sums[r].subtract(agent.effective[r]);
        shard.sums[r].add(effective[r]);
    }
    applyAlongPath(agent.pool, agent.effective, -1);
    applyAlongPath(pool, effective, +1);
    for (std::uint32_t node = agent.pool;;) {
        --nodes_[node].agentsInSubtree;
        if (node == 0)
            break;
        node = nodes_[node].parent;
    }
    for (std::uint32_t node = pool;;) {
        ++nodes_[node].agentsInSubtree;
        if (node == 0)
            break;
        node = nodes_[node].parent;
    }
    --nodes_[agent.pool].directAgents;
    ++nodes_[pool].directAgents;
    agent.pool = pool;
    agent.effective = effective;
    ++churnEvents_;
}

void
PoolTree::depart(const std::string &name)
{
    PooledAgent &agent = entryOf(name);
    auto &shard = shardFor(name);
    for (std::size_t r = 0; r < agent.effective.size(); ++r)
        shard.sums[r].subtract(agent.effective[r]);
    applyAlongPath(agent.pool, agent.effective, -1);
    for (std::uint32_t node = agent.pool;;) {
        --nodes_[node].agentsInSubtree;
        if (node == 0)
            break;
        node = nodes_[node].parent;
    }
    --nodes_[agent.pool].directAgents;
    shard.agents.erase(name);
    --agentCount_;
    ++churnEvents_;
}

bool
PoolTree::contains(const std::string &name) const
{
    const auto &shard = shardFor(name);
    return shard.agents.find(name) != shard.agents.end();
}

const std::string &
PoolTree::poolOf(const std::string &name) const
{
    return nodes_[entryOf(name).pool].path;
}

double
PoolTree::denominator(std::size_t r) const
{
    return nodes_[0].subtree[r].round();
}

linalg::Vector
PoolTree::sharesOf(const std::string &name) const
{
    const PooledAgent &agent = entryOf(name);
    linalg::Vector shares(capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double d = denominator(r);
        REF_ASSERT(d > 0,
                   "effective claims sum to zero for resource " << r);
        shares[r] = agent.effective[r] / d * capacity_.capacity(r);
    }
    return shares;
}

linalg::Vector
PoolTree::poolShareFractions(const std::string &path) const
{
    const Node &node = nodes_[resolve(path)];
    linalg::Vector fractions(capacity_.count(), 0.0);
    if (empty())
        return fractions;
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double d = denominator(r);
        REF_ASSERT(d > 0,
                   "effective claims sum to zero for resource " << r);
        fractions[r] = node.subtree[r].round() / d;
    }
    return fractions;
}

std::vector<PoolView>
PoolTree::pools() const
{
    std::vector<PoolView> views;
    views.reserve(nodes_.size());
    for (const Node &node : nodes_) {
        PoolView view;
        view.path = node.path;
        view.weight = node.weight;
        view.gain = node.gain;
        view.agents = node.agentsInSubtree;
        view.directAgents = node.directAgents;
        view.createdEpoch = node.createdEpoch;
        views.push_back(std::move(view));
    }
    return views;
}

std::vector<const PooledAgent *>
PoolTree::denseOrder() const
{
    std::vector<const PooledAgent *> order;
    order.reserve(agentCount_);
    for (const auto &shard : shards_)
        for (const auto &entry : shard.agents)
            order.push_back(&entry.second);
    std::sort(order.begin(), order.end(),
              [](const PooledAgent *a, const PooledAgent *b) {
                  return a->seq < b->seq;
              });
    return order;
}

core::Allocation
PoolTree::allocateWith(const std::vector<const PooledAgent *> &order,
                       const std::vector<double> &denominators,
                       std::vector<std::string> *names) const
{
    core::Allocation allocation(order.size(), capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double d = denominators[r];
        REF_ASSERT(d > 0,
                   "effective claims sum to zero for resource " << r);
        // Same expression as the flat registry, applied to the same
        // doubles: exact denominators make the paths bit-identical.
        for (std::size_t i = 0; i < order.size(); ++i) {
            allocation.at(i, r) =
                order[i]->effective[r] / d * capacity_.capacity(r);
        }
    }
    if (names != nullptr) {
        names->clear();
        names->reserve(order.size());
        for (const PooledAgent *agent : order)
            names->push_back(agent->name);
    }
    return allocation;
}

core::Allocation
PoolTree::allocateDense(std::vector<std::string> *names) const
{
    REF_REQUIRE(!empty(), "no agents to allocate to");
    std::vector<double> denominators(capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r)
        denominators[r] = denominator(r);
    return allocateWith(denseOrder(), denominators, names);
}

core::Allocation
PoolTree::allocateFromScratchDense(std::vector<std::string> *names) const
{
    REF_REQUIRE(!empty(), "no agents to allocate to");
    // Flat rebuild in arbitrary (shard) order: ExactSum's
    // order-independence makes this round identically to the
    // incrementally maintained root sums.
    std::vector<ExactSum> sums(capacity_.count());
    for (const auto &shard : shards_)
        for (const auto &entry : shard.agents)
            for (std::size_t r = 0; r < capacity_.count(); ++r)
                sums[r].add(entry.second.effective[r]);
    std::vector<double> denominators(capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r)
        denominators[r] = sums[r].round();
    return allocateWith(denseOrder(), denominators, names);
}

core::AgentList
PoolTree::agentList() const
{
    core::AgentList list;
    list.reserve(agentCount_);
    for (const PooledAgent *agent : denseOrder()) {
        list.emplace_back(agent->name,
                          core::CobbDouglasUtility(agent->elasticities));
    }
    return list;
}

bool
PoolTree::selfCheck() const
{
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double incremental = nodes_[0].subtree[r].round();

        ExactSum merged;
        for (const auto &shard : shards_)
            merged.merge(shard.sums[r]);

        ExactSum scratch;
        for (const auto &shard : shards_)
            for (const auto &entry : shard.agents)
                scratch.add(entry.second.effective[r]);

        if (incremental != merged.round() ||
            incremental != scratch.round())
            return false;
    }
    if (empty())
        return true;

    const core::Allocation fast = allocateDense();
    const core::Allocation slow = allocateFromScratchDense();
    if (fast.agents() != slow.agents() ||
        fast.resources() != slow.resources())
        return false;
    for (std::size_t i = 0; i < fast.agents(); ++i)
        for (std::size_t r = 0; r < fast.resources(); ++r)
            if (fast.at(i, r) != slow.at(i, r))
                return false;
    return true;
}

bool
PoolTree::allUnitGains() const
{
    for (const Node &node : nodes_)
        if (node.gain != 1.0)
            return false;
    return true;
}

} // namespace ref::pool
