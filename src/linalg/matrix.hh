/**
 * @file
 * Dense matrix and vector operations.
 *
 * The REF mechanisms operate on small problems (N agents x R
 * resources, both two-digit at most), so a straightforward row-major
 * dense matrix is the right tool: no sparsity, no blocking, no
 * expression templates.
 */

#ifndef REF_LINALG_MATRIX_HH
#define REF_LINALG_MATRIX_HH

#include <cstddef>
#include <vector>

namespace ref::linalg {

/** Column vector, stored as a plain std::vector<double>. */
using Vector = std::vector<double>;

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill);

    /** Build from nested initializer data; rows must be equal length. */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** Matrix transpose. */
    Matrix transposed() const;

    /** Matrix-matrix product. @pre cols() == other.rows(). */
    Matrix operator*(const Matrix &other) const;

    /** Matrix-vector product. @pre cols() == v.size(). */
    Vector operator*(const Vector &v) const;

    /** Element-wise sum. @pre same shape. */
    Matrix operator+(const Matrix &other) const;

    /** Element-wise difference. @pre same shape. */
    Matrix operator-(const Matrix &other) const;

    /** Scale every element. */
    Matrix scaled(double factor) const;

    /** Extract one row as a vector. */
    Vector row(std::size_t r) const;

    /** Extract one column as a vector. */
    Vector column(std::size_t c) const;

    /** Maximum absolute element; 0 for an empty matrix. */
    double maxAbs() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product. @pre equal sizes. */
double dot(const Vector &a, const Vector &b);

/** Euclidean norm. */
double norm2(const Vector &v);

/** Infinity norm (max absolute entry); 0 for empty. */
double normInf(const Vector &v);

/** a + b element-wise. @pre equal sizes. */
Vector add(const Vector &a, const Vector &b);

/** a - b element-wise. @pre equal sizes. */
Vector subtract(const Vector &a, const Vector &b);

/** v scaled by factor. */
Vector scale(const Vector &v, double factor);

/** a + factor * b, the classic axpy. @pre equal sizes. */
Vector axpy(const Vector &a, double factor, const Vector &b);

} // namespace ref::linalg

#endif // REF_LINALG_MATRIX_HH
