/**
 * @file
 * Matrix factorizations: Cholesky for SPD systems and Householder QR
 * for least squares.
 */

#ifndef REF_LINALG_DECOMPOSE_HH
#define REF_LINALG_DECOMPOSE_HH

#include "linalg/matrix.hh"

namespace ref::linalg {

/**
 * Cholesky factorization A = L L^T of a symmetric positive definite
 * matrix, with forward/back substitution solves.
 *
 * Throws FatalError if the matrix is not SPD (a non-positive pivot is
 * encountered).
 */
class Cholesky
{
  public:
    /** Factor the SPD matrix @p a. */
    explicit Cholesky(const Matrix &a);

    /** Solve A x = b. @pre b.size() == dimension(). */
    Vector solve(const Vector &b) const;

    /** Dimension of the factored matrix. */
    std::size_t dimension() const { return lower_.rows(); }

    /** The lower-triangular factor L. */
    const Matrix &lower() const { return lower_; }

  private:
    Matrix lower_;
};

/**
 * Householder QR factorization A = Q R of an m x n matrix with
 * m >= n, used for numerically stable linear least squares.
 */
class HouseholderQr
{
  public:
    /** Factor @p a. @pre a.rows() >= a.cols(). */
    explicit HouseholderQr(const Matrix &a);

    /**
     * Minimize ||A x - b||_2.
     *
     * Throws FatalError if A is rank deficient (an |R_kk| below the
     * tolerance), since a unique least-squares solution then does
     * not exist.
     */
    Vector solve(const Vector &b) const;

    /** Upper-triangular factor R (n x n block). */
    Matrix r() const;

    /** True if all diagonal entries of R exceed the tolerance. */
    bool fullRank(double tolerance = 1e-12) const;

  private:
    /** Apply the stored Householder reflections to a vector. */
    Vector applyQTranspose(const Vector &b) const;

    Matrix qr_;          //!< Packed reflectors and R.
    Vector reflectorBeta_;
};

/** Solve the square system A x = b via QR. @pre A square. */
Vector solveLinearSystem(const Matrix &a, const Vector &b);

} // namespace ref::linalg

#endif // REF_LINALG_DECOMPOSE_HH
