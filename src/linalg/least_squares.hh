/**
 * @file
 * Linear least squares via Householder QR.
 */

#ifndef REF_LINALG_LEAST_SQUARES_HH
#define REF_LINALG_LEAST_SQUARES_HH

#include "linalg/matrix.hh"

namespace ref::linalg {

/** Result of an ordinary least squares solve. */
struct LeastSquaresResult
{
    Vector coefficients;   //!< Minimizer of ||A x - b||_2.
    Vector residuals;      //!< b - A x at the minimizer.
    double residualNorm;   //!< ||residuals||_2.
};

/**
 * Minimize ||A x - b||_2 for a full-column-rank A (rows >= cols).
 *
 * Throws FatalError on shape mismatch or rank deficiency.
 */
LeastSquaresResult leastSquares(const Matrix &a, const Vector &b);

} // namespace ref::linalg

#endif // REF_LINALG_LEAST_SQUARES_HH
