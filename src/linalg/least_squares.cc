#include "least_squares.hh"

#include "linalg/decompose.hh"
#include "util/logging.hh"

namespace ref::linalg {

LeastSquaresResult
leastSquares(const Matrix &a, const Vector &b)
{
    REF_REQUIRE(a.rows() == b.size(),
                "design matrix has " << a.rows() << " rows but rhs has "
                    << b.size() << " entries");

    LeastSquaresResult result;
    result.coefficients = HouseholderQr(a).solve(b);
    result.residuals = subtract(b, a * result.coefficients);
    result.residualNorm = norm2(result.residuals);
    return result;
}

} // namespace ref::linalg
