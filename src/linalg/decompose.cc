#include "decompose.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::linalg {

Cholesky::Cholesky(const Matrix &a)
    : lower_(a.rows(), a.cols())
{
    REF_REQUIRE(a.rows() == a.cols(), "Cholesky of non-square matrix");
    const std::size_t n = a.rows();

    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= lower_(j, k) * lower_(j, k);
        REF_REQUIRE(diag > 0,
                    "matrix is not positive definite (pivot " << j
                        << " = " << diag << ")");
        lower_(j, j) = std::sqrt(diag);

        for (std::size_t i = j + 1; i < n; ++i) {
            double off = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                off -= lower_(i, k) * lower_(j, k);
            lower_(i, j) = off / lower_(j, j);
        }
    }
}

Vector
Cholesky::solve(const Vector &b) const
{
    const std::size_t n = dimension();
    REF_REQUIRE(b.size() == n, "rhs size mismatch");

    // Forward substitution: L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double value = b[i];
        for (std::size_t k = 0; k < i; ++k)
            value -= lower_(i, k) * y[k];
        y[i] = value / lower_(i, i);
    }

    // Back substitution: L^T x = y.
    Vector x(n);
    for (std::size_t i = n; i-- > 0;) {
        double value = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            value -= lower_(k, i) * x[k];
        x[i] = value / lower_(i, i);
    }
    return x;
}

HouseholderQr::HouseholderQr(const Matrix &a)
    : qr_(a), reflectorBeta_(std::min(a.rows(), a.cols()), 0.0)
{
    REF_REQUIRE(a.rows() >= a.cols(),
                "QR expects rows >= cols, got " << a.rows() << "x"
                    << a.cols());
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();

    for (std::size_t k = 0; k < n; ++k) {
        // Build the Householder reflector for column k.
        double norm_x = 0;
        for (std::size_t i = k; i < m; ++i)
            norm_x += qr_(i, k) * qr_(i, k);
        norm_x = std::sqrt(norm_x);

        if (norm_x == 0.0) {
            reflectorBeta_[k] = 0.0;
            continue;
        }

        const double alpha = qr_(k, k) >= 0 ? -norm_x : norm_x;
        // v = x - alpha e1, stored in place below the diagonal with
        // v_k normalized to 1 (beta carries the scaling).
        const double v_k = qr_(k, k) - alpha;
        qr_(k, k) = alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            qr_(i, k) /= v_k;
        reflectorBeta_[k] = -v_k / alpha;

        // Apply the reflector to the remaining columns.
        for (std::size_t j = k + 1; j < n; ++j) {
            double proj = qr_(k, j);
            for (std::size_t i = k + 1; i < m; ++i)
                proj += qr_(i, k) * qr_(i, j);
            proj *= reflectorBeta_[k];
            qr_(k, j) -= proj;
            for (std::size_t i = k + 1; i < m; ++i)
                qr_(i, j) -= proj * qr_(i, k);
        }
    }
}

Vector
HouseholderQr::applyQTranspose(const Vector &b) const
{
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();
    Vector y = b;

    for (std::size_t k = 0; k < n; ++k) {
        if (reflectorBeta_[k] == 0.0)
            continue;
        double proj = y[k];
        for (std::size_t i = k + 1; i < m; ++i)
            proj += qr_(i, k) * y[i];
        proj *= reflectorBeta_[k];
        y[k] -= proj;
        for (std::size_t i = k + 1; i < m; ++i)
            y[i] -= proj * qr_(i, k);
    }
    return y;
}

Vector
HouseholderQr::solve(const Vector &b) const
{
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();
    REF_REQUIRE(b.size() == m, "rhs size mismatch");
    REF_REQUIRE(fullRank(),
                "rank-deficient least-squares system has no unique "
                "solution");

    const Vector y = applyQTranspose(b);

    // Back substitution against the R block.
    Vector x(n);
    for (std::size_t i = n; i-- > 0;) {
        double value = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            value -= qr_(i, k) * x[k];
        x[i] = value / qr_(i, i);
    }
    return x;
}

Matrix
HouseholderQr::r() const
{
    const std::size_t n = qr_.cols();
    Matrix result(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            result(i, j) = qr_(i, j);
    return result;
}

bool
HouseholderQr::fullRank(double tolerance) const
{
    for (std::size_t k = 0; k < qr_.cols(); ++k) {
        if (std::abs(qr_(k, k)) <= tolerance)
            return false;
    }
    return true;
}

Vector
solveLinearSystem(const Matrix &a, const Vector &b)
{
    REF_REQUIRE(a.rows() == a.cols(), "solveLinearSystem needs a square "
                                      "matrix");
    return HouseholderQr(a).solve(b);
}

} // namespace ref::linalg
