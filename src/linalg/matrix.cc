#include "matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    REF_REQUIRE(!rows.empty(), "fromRows needs at least one row");
    const std::size_t cols = rows.front().size();
    Matrix m(rows.size(), cols);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        REF_REQUIRE(rows[r].size() == cols,
                    "row " << r << " has " << rows[r].size()
                           << " columns, expected " << cols);
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    REF_ASSERT(r < rows_ && c < cols_,
               "index (" << r << "," << c << ") outside " << rows_ << "x"
                         << cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    REF_ASSERT(r < rows_ && c < cols_,
               "index (" << r << "," << c << ") outside " << rows_ << "x"
                         << cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    REF_REQUIRE(cols_ == other.rows_,
                "product shape mismatch: " << rows_ << "x" << cols_
                    << " times " << other.rows_ << "x" << other.cols_);
    Matrix result(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double lhs = (*this)(r, k);
            if (lhs == 0.0)
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                result(r, c) += lhs * other(k, c);
        }
    }
    return result;
}

Vector
Matrix::operator*(const Vector &v) const
{
    REF_REQUIRE(cols_ == v.size(),
                "matrix-vector shape mismatch: " << rows_ << "x" << cols_
                    << " times " << v.size());
    Vector result(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            result[r] += (*this)(r, c) * v[c];
    return result;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    REF_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "sum shape mismatch");
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] + other.data_[i];
    return result;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    REF_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "difference shape mismatch");
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] - other.data_[i];
    return result;
}

Matrix
Matrix::scaled(double factor) const
{
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] * factor;
    return result;
}

Vector
Matrix::row(std::size_t r) const
{
    REF_REQUIRE(r < rows_, "row " << r << " outside " << rows_);
    Vector result(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        result[c] = (*this)(r, c);
    return result;
}

Vector
Matrix::column(std::size_t c) const
{
    REF_REQUIRE(c < cols_, "column " << c << " outside " << cols_);
    Vector result(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        result[r] = (*this)(r, c);
    return result;
}

double
Matrix::maxAbs() const
{
    double result = 0;
    for (double value : data_)
        result = std::max(result, std::abs(value));
    return result;
}

double
dot(const Vector &a, const Vector &b)
{
    REF_REQUIRE(a.size() == b.size(), "dot of unequal sizes");
    double result = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        result += a[i] * b[i];
    return result;
}

double
norm2(const Vector &v)
{
    return std::sqrt(dot(v, v));
}

double
normInf(const Vector &v)
{
    double result = 0;
    for (double value : v)
        result = std::max(result, std::abs(value));
    return result;
}

Vector
add(const Vector &a, const Vector &b)
{
    REF_REQUIRE(a.size() == b.size(), "add of unequal sizes");
    Vector result(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        result[i] = a[i] + b[i];
    return result;
}

Vector
subtract(const Vector &a, const Vector &b)
{
    REF_REQUIRE(a.size() == b.size(), "subtract of unequal sizes");
    Vector result(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        result[i] = a[i] - b[i];
    return result;
}

Vector
scale(const Vector &v, double factor)
{
    Vector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        result[i] = v[i] * factor;
    return result;
}

Vector
axpy(const Vector &a, double factor, const Vector &b)
{
    REF_REQUIRE(a.size() == b.size(), "axpy of unequal sizes");
    Vector result(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        result[i] = a[i] + factor * b[i];
    return result;
}

} // namespace ref::linalg
