#include "proportional_elasticity.hh"

#include "util/logging.hh"
#include "util/math.hh"

namespace ref::core {

linalg::Matrix
ProportionalElasticityMechanism::rescaledElasticities(
    const AgentList &agents)
{
    REF_REQUIRE(!agents.empty(), "no agents to allocate to");
    const std::size_t resources = agents.front().utility().resources();
    linalg::Matrix rescaled(agents.size(), resources);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const auto &utility = agents[i].utility();
        REF_REQUIRE(utility.resources() == resources,
                    "agent '" << agents[i].name() << "' covers "
                        << utility.resources()
                        << " resources, expected " << resources);
        const Vector normalized =
            normalizeToUnitSum(utility.elasticities());
        for (std::size_t r = 0; r < resources; ++r)
            rescaled(i, r) = normalized[r];
    }
    return rescaled;
}

Allocation
ProportionalElasticityMechanism::allocate(
    const AgentList &agents, const SystemCapacity &capacity) const
{
    const linalg::Matrix rescaled = rescaledElasticities(agents);
    REF_REQUIRE(rescaled.cols() == capacity.count(),
                "agents cover " << rescaled.cols()
                    << " resources, capacity has " << capacity.count());

    Allocation allocation(agents.size(), capacity.count());
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        double denominator = 0;
        for (std::size_t j = 0; j < agents.size(); ++j)
            denominator += rescaled(j, r);
        REF_ASSERT(denominator > 0,
                   "re-scaled elasticities sum to zero for resource "
                       << r);
        for (std::size_t i = 0; i < agents.size(); ++i) {
            allocation.at(i, r) =
                rescaled(i, r) / denominator * capacity.capacity(r);
        }
    }
    return allocation;
}

} // namespace ref::core
