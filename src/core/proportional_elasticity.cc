#include "proportional_elasticity.hh"

#include <cmath>

#include "util/exact_sum.hh"
#include "util/logging.hh"
#include "util/math.hh"

namespace ref::core {

linalg::Matrix
ProportionalElasticityMechanism::rescaledElasticities(
    const AgentList &agents)
{
    REF_REQUIRE(!agents.empty(), "no agents to allocate to");
    const std::size_t resources = agents.front().utility().resources();
    linalg::Matrix rescaled(agents.size(), resources);
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const auto &utility = agents[i].utility();
        REF_REQUIRE(utility.resources() == resources,
                    "agent '" << agents[i].name() << "' covers "
                        << utility.resources()
                        << " resources, expected " << resources);
        for (std::size_t r = 0; r < resources; ++r) {
            const double alpha = utility.elasticity(r);
            REF_REQUIRE(std::isfinite(alpha) && alpha > 0,
                        "agent '" << agents[i].name()
                            << "' reports elasticity " << alpha
                            << " for resource " << r
                            << "; elasticities must be positive and "
                               "finite");
        }
        const Vector normalized =
            normalizeToUnitSum(utility.elasticities());
        for (std::size_t r = 0; r < resources; ++r)
            rescaled(i, r) = normalized[r];
    }
    return rescaled;
}

Allocation
ProportionalElasticityMechanism::allocate(
    const AgentList &agents, const SystemCapacity &capacity) const
{
    const linalg::Matrix rescaled = rescaledElasticities(agents);
    REF_REQUIRE(rescaled.cols() == capacity.count(),
                "agents cover " << rescaled.cols()
                    << " resources, capacity has " << capacity.count());

    // Each denominator is accumulated exactly and then correctly
    // rounded, so it depends only on the set of agents, never on
    // their order — the property that lets the online service
    // maintain these sums incrementally (svc/agent_registry.hh) and
    // still match this from-scratch path bit for bit.
    Allocation allocation(agents.size(), capacity.count());
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        ExactSum sum;
        for (std::size_t j = 0; j < agents.size(); ++j)
            sum.add(rescaled(j, r));
        const double denominator = sum.round();
        REF_ASSERT(denominator > 0,
                   "re-scaled elasticities sum to zero for resource "
                       << r);
        for (std::size_t i = 0; i < agents.size(); ++i) {
            allocation.at(i, r) =
                rescaled(i, r) / denominator * capacity.capacity(r);
        }
    }
    return allocation;
}

} // namespace ref::core
