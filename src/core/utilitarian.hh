/**
 * @file
 * Approximate utilitarian welfare maximization (paper Section 4.5).
 *
 * The paper notes that max sum_i U_i(x_i) is computationally
 * intractable (maximizing a convex function — each U_i is a
 * monomial, convex in log space) and substitutes the Nash product.
 * We provide the utilitarian objective anyway as an approximate
 * mechanism: multi-start local search with the penalty solver.
 * Useful as an empirical upper bound on weighted system throughput
 * — by construction it can only exceed the Nash-welfare optimum on
 * that metric.
 */

#ifndef REF_CORE_UTILITARIAN_HH
#define REF_CORE_UTILITARIAN_HH

#include "core/mechanism.hh"

namespace ref::core {

/** Multi-start local maximization of sum_i U_i. */
class UtilitarianMechanism : public AllocationMechanism
{
  public:
    struct Options
    {
        /** Random restarts beyond the deterministic seeds. */
        int randomStarts = 6;
        std::uint64_t seed = 1;
        bool withFairness = false;  //!< Add SI/EF/PE constraints.
    };

    UtilitarianMechanism();
    explicit UtilitarianMechanism(Options options);

    std::string name() const override;

    Allocation allocate(const AgentList &agents,
                        const SystemCapacity &capacity) const override;

  private:
    Options options_;
};

} // namespace ref::core

#endif // REF_CORE_UTILITARIAN_HH
