/**
 * @file
 * Strategic manipulation analysis: strategy-proofness in the large
 * (paper Section 4.3 and Appendix A).
 *
 * A strategic agent i may report elasticities a' different from its
 * true a to shift its proportional share. Its realized utility from
 * a report (Eq. 15) is
 *
 *   u_i(a') = prod_r ( a'_ir / (a'_ir + sum_{j!=i} a_jr) * C_r )^{a_ir}
 *
 * evaluated with the TRUE elasticities. We compute the best response
 * numerically and measure the gain over truthful reporting; in large
 * systems (sum_j a_jr >> 1) the gain vanishes — SPL.
 */

#ifndef REF_CORE_STRATEGIC_HH
#define REF_CORE_STRATEGIC_HH

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/** Result of a best-response search for one strategic agent. */
struct BestResponse
{
    Vector report;            //!< Utility-maximizing reported a'.
    double utility = 0;       //!< True utility achieved by the report.
    double truthfulUtility = 0;  //!< True utility when reporting a.
    /** utility / truthfulUtility; 1 means lying does not pay. */
    double gainRatio = 1;
    /** Largest |report_r - true_r| over resources (both rescaled). */
    double reportDeviation = 0;
};

/**
 * True utility an agent with (rescaled) elasticities @p true_alphas
 * realizes by reporting @p report when the per-resource sums of all
 * other agents' reported rescaled elasticities are @p others_sum.
 *
 * This is Eq. 15 stated without a full agent list: @p others_sum is
 * exactly what a strategic network client can infer from its own
 * observed share s_r, since s_r = w_r / (w_r + others_r) * C_r.
 * Returns 0 when the report starves a resource the agent truly
 * needs (share -> 0 with a positive true elasticity).
 */
double utilityAgainst(const Vector &true_alphas,
                      const Vector &others_sum,
                      const SystemCapacity &capacity,
                      const Vector &report);

/**
 * Numerically maximize one agent's utility over its report simplex
 * against fixed opponent mass @p others_sum. Brent over a logit for
 * two resources, multi-start Nelder-Mead over a log-sum-exp softmax
 * otherwise; both stay finite at degenerate corners (true
 * elasticities arbitrarily close to 0 or 1, opponents concentrated
 * on one resource). The result never falls below the truthful
 * report: lying is floored at honesty.
 */
BestResponse bestResponseAgainst(const Vector &true_alphas,
                                 const Vector &others_sum,
                                 const SystemCapacity &capacity);

/** Analysis of strategic behaviour under proportional elasticity. */
class StrategicAnalysis
{
  public:
    /**
     * @param agents All participants; utilities are re-scaled
     *        internally, matching what the mechanism consumes.
     */
    StrategicAnalysis(AgentList agents, SystemCapacity capacity);

    /**
     * True utility agent i realizes when it reports @p report
     * (re-scaled internally) while all others report truthfully.
     */
    double utilityFromReport(std::size_t agent,
                             const Vector &report) const;

    /**
     * Numerically maximize agent i's utility over its reported
     * elasticity simplex. Uses Brent for two resources and
     * Nelder-Mead over a softmax parameterization otherwise.
     */
    BestResponse bestResponse(std::size_t agent) const;

  private:
    AgentList agents_;
    SystemCapacity capacity_;
    /** Per-resource sums of others' re-scaled elasticities. */
    Vector othersElasticitySum(std::size_t agent) const;
};

} // namespace ref::core

#endif // REF_CORE_STRATEGIC_HH
