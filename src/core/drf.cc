#include "drf.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ref::core {

double
dominantShare(const LeontiefUtility &utility, double tasks,
              const SystemCapacity &capacity)
{
    REF_REQUIRE(utility.resources() == capacity.count(),
                "utility/capacity resource mismatch");
    double share = 0;
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        share = std::max(share, tasks * utility.demand(r) /
                                    capacity.capacity(r));
    }
    return share;
}

DrfResult
allocateDrf(const std::vector<LeontiefAgent> &agents,
            const SystemCapacity &capacity)
{
    const std::size_t n = agents.size();
    REF_REQUIRE(n > 0, "no agents to allocate to");
    const std::size_t r_count = capacity.count();
    for (const auto &agent : agents) {
        REF_REQUIRE(agent.utility().resources() == r_count,
                    "agent '" << agent.name()
                        << "' demand vector does not span the "
                           "capacity");
    }

    // Per-unit-of-dominant-share consumption: growing agent i's
    // dominant share by ds consumes ds * d_ir / domFactor_i of
    // resource r, where domFactor_i = max_r d_ir / C_r.
    std::vector<double> dom_factor(n);
    for (std::size_t i = 0; i < n; ++i) {
        dom_factor[i] =
            dominantShare(agents[i].utility(), 1.0, capacity);
        REF_ASSERT(dom_factor[i] > 0, "zero dominant factor");
    }

    std::vector<double> tasks(n, 0.0);
    std::vector<bool> frozen(n, false);
    Vector remaining = capacity.capacities();

    // Progressive filling: raise all active agents' dominant shares
    // in lock-step until a resource saturates; freeze the agents
    // that demand it; repeat on the leftovers.
    for (std::size_t round = 0; round <= n; ++round) {
        // Aggregate consumption rate per resource for active agents.
        Vector rate(r_count, 0.0);
        bool any_active = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (frozen[i])
                continue;
            any_active = true;
            for (std::size_t r = 0; r < r_count; ++r) {
                rate[r] +=
                    agents[i].utility().demand(r) / dom_factor[i];
            }
        }
        if (!any_active)
            break;

        double delta = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < r_count; ++r) {
            if (rate[r] > 0)
                delta = std::min(delta, remaining[r] / rate[r]);
        }
        REF_ASSERT(std::isfinite(delta),
                   "active agents consume no resource");

        for (std::size_t i = 0; i < n; ++i) {
            if (!frozen[i])
                tasks[i] += delta / dom_factor[i];
        }
        for (std::size_t r = 0; r < r_count; ++r)
            remaining[r] -= rate[r] * delta;

        // Freeze agents that demand any saturated resource.
        for (std::size_t r = 0; r < r_count; ++r) {
            if (remaining[r] > 1e-12 * capacity.capacity(r))
                continue;
            remaining[r] = std::max(remaining[r], 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                if (agents[i].utility().demand(r) > 0)
                    frozen[i] = true;
            }
        }
    }

    DrfResult result;
    result.allocation = Allocation(n, r_count);
    result.tasksGranted = tasks;
    result.dominantShares.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        Vector bundle(r_count);
        for (std::size_t r = 0; r < r_count; ++r)
            bundle[r] = tasks[i] * agents[i].utility().demand(r);
        result.allocation.setAgentShare(i, bundle);
        result.dominantShares[i] =
            dominantShare(agents[i].utility(), tasks[i], capacity);
    }
    return result;
}

} // namespace ref::core
