/**
 * @file
 * Dominant Resource Fairness (Ghodsi et al., NSDI'11) — the paper's
 * main related-work comparison point (Section 6).
 *
 * DRF serves agents with Leontief preferences: each agent states a
 * demand vector and the mechanism equalizes dominant shares (the
 * maximum share any agent holds of any resource). It provides SI,
 * EF, PE and full SP — but only on the Leontief domain; the paper's
 * argument is that Leontief cannot express the diminishing returns
 * and substitution that hardware resources exhibit (Figures 3-4).
 * Implementing DRF lets the repository demonstrate that trade-off
 * quantitatively (bench_drf_comparison).
 */

#ifndef REF_CORE_DRF_HH
#define REF_CORE_DRF_HH

#include <string>
#include <vector>

#include "core/allocation.hh"
#include "core/leontief.hh"

namespace ref::core {

/** An agent with Leontief preferences (a demand vector). */
class LeontiefAgent
{
  public:
    LeontiefAgent(std::string name, LeontiefUtility utility)
        : name_(std::move(name)), utility_(std::move(utility))
    {}

    const std::string &name() const { return name_; }
    const LeontiefUtility &utility() const { return utility_; }

  private:
    std::string name_;
    LeontiefUtility utility_;
};

/** Result of a DRF allocation. */
struct DrfResult
{
    Allocation allocation;
    /** Tasks (demand-vector multiples) granted to each agent. */
    std::vector<double> tasksGranted;
    /** Final dominant share of each agent. */
    std::vector<double> dominantShares;
};

/**
 * Water-filling (continuous) DRF: grow every agent's task count so
 * all dominant shares stay equal until some resource saturates;
 * agents whose demands the saturated resource binds stop growing,
 * the rest continue ("progressive filling").
 *
 * @pre every agent demands a positive amount of at least one
 *      resource with positive capacity.
 */
DrfResult allocateDrf(const std::vector<LeontiefAgent> &agents,
                      const SystemCapacity &capacity);

/**
 * The dominant share of a bundle for a Leontief agent: its maximum
 * fractional usage of any resource.
 */
double dominantShare(const LeontiefUtility &utility, double tasks,
                     const SystemCapacity &capacity);

} // namespace ref::core

#endif // REF_CORE_DRF_HH
