#include "welfare_mechanisms.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/gp_program.hh"
#include "solver/function.hh"
#include "util/logging.hh"

namespace ref::core {

namespace {

using gp::ProgramShape;
using solver::LambdaFunction;
using solver::Vector;

/** Nash objective: minimize -sum_i log U_i. */
std::shared_ptr<const LambdaFunction>
makeNashObjective(const ProgramShape &shape, const AgentList &agents,
                  const SystemCapacity &capacity)
{
    std::vector<Vector> alphas;
    alphas.reserve(agents.size());
    for (const auto &agent : agents)
        alphas.push_back(agent.utility().elasticities());
    double offset = 0;
    for (std::size_t i = 0; i < shape.agents; ++i)
        for (std::size_t r = 0; r < shape.resources; ++r)
            offset += alphas[i][r] * std::log(capacity.capacity(r));

    auto value = [shape, alphas, offset](const Vector &y) {
        double total = 0;
        for (std::size_t i = 0; i < shape.agents; ++i)
            for (std::size_t r = 0; r < shape.resources; ++r)
                total += alphas[i][r] * y[shape.index(i, r)];
        return offset - total;
    };
    auto gradient = [shape, alphas](const Vector &y) {
        Vector grad(y.size(), 0.0);
        for (std::size_t i = 0; i < shape.agents; ++i)
            for (std::size_t r = 0; r < shape.resources; ++r)
                grad[shape.index(i, r)] = -alphas[i][r];
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

/** Max-min epigraph objective: minimize -s. */
std::shared_ptr<const LambdaFunction>
makeEpigraphObjective(const ProgramShape &shape)
{
    const std::size_t s_index = shape.agents * shape.resources;
    auto value = [s_index](const Vector &y) { return -y[s_index]; };
    auto gradient = [s_index](const Vector &y) {
        Vector grad(y.size(), 0.0);
        grad[s_index] = -1;
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

/** Epigraph constraint for agent i: s - log U_i(y) <= 0. */
std::shared_ptr<const LambdaFunction>
makeEpigraphConstraint(const ProgramShape &shape, const AgentList &agents,
                       const SystemCapacity &capacity, std::size_t i)
{
    const Vector alphas = agents[i].utility().elasticities();
    const std::size_t s_index = shape.agents * shape.resources;
    double offset = 0;
    for (std::size_t r = 0; r < shape.resources; ++r)
        offset += alphas[r] * std::log(capacity.capacity(r));

    auto value = [shape, alphas, i, s_index, offset](const Vector &y) {
        double log_u = -offset;
        for (std::size_t r = 0; r < shape.resources; ++r)
            log_u += alphas[r] * y[shape.index(i, r)];
        return y[s_index] - log_u;
    };
    auto gradient = [shape, alphas, i, s_index](const Vector &y) {
        Vector grad(y.size(), 0.0);
        grad[s_index] = 1;
        for (std::size_t r = 0; r < shape.resources; ++r)
            grad[shape.index(i, r)] = -alphas[r];
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

} // namespace

WelfareMechanism::WelfareMechanism(WelfareObjective objective,
                                   bool with_fairness)
    : WelfareMechanism(objective, with_fairness, Options{})
{
}

WelfareMechanism::WelfareMechanism(WelfareObjective objective,
                                   bool with_fairness, Options options)
    : objective_(objective), withFairness_(with_fairness),
      options_(std::move(options))
{
}

std::string
WelfareMechanism::name() const
{
    std::string base = objective_ == WelfareObjective::NashProduct
                           ? "max-welfare"
                           : "equal-slowdown";
    return base + (withFairness_ ? "+fairness" : "");
}

Allocation
WelfareMechanism::allocate(const AgentList &agents,
                           const SystemCapacity &capacity) const
{
    REF_REQUIRE(!agents.empty(), "no agents to allocate to");
    for (const auto &agent : agents) {
        REF_REQUIRE(agent.utility().resources() == capacity.count(),
                    "agent '" << agent.name()
                        << "' utility does not span the capacity");
    }

    const ProgramShape shape{
        agents.size(), capacity.count(),
        objective_ == WelfareObjective::MaxMin};

    solver::ConstrainedProgram program;
    if (objective_ == WelfareObjective::NashProduct) {
        program.objective = makeNashObjective(shape, agents, capacity);
    } else {
        program.objective = makeEpigraphObjective(shape);
        for (std::size_t i = 0; i < shape.agents; ++i) {
            program.inequalities.push_back(
                makeEpigraphConstraint(shape, agents, capacity, i));
        }
    }

    for (std::size_t r = 0; r < shape.resources; ++r) {
        program.inequalities.push_back(
            gp::makeCapacityConstraint(shape, capacity, r));
    }
    if (withFairness_)
        gp::appendFairnessConstraints(shape, agents, capacity, program);

    Vector start = gp::equalSplitStart(shape, capacity);
    if (shape.hasEpigraph) {
        double worst = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < shape.agents; ++i) {
            worst = std::min(
                worst, gp::logWeightedUtility(shape, agents, capacity,
                                              start, i));
        }
        start[shape.agents * shape.resources] = worst;
    }

    const auto solution =
        solver::solvePenalty(program, start, options_.penalty);
    if (!solution.converged) {
        REF_WARN("welfare mechanism '"
                 << name() << "' left residual constraint violation "
                 << solution.maxViolation);
    }

    Allocation allocation(shape.agents, shape.resources);
    for (std::size_t i = 0; i < shape.agents; ++i) {
        for (std::size_t r = 0; r < shape.resources; ++r) {
            allocation.at(i, r) =
                std::exp(solution.point[shape.index(i, r)]);
        }
    }

    if (options_.projectToCapacity) {
        const Vector sums = allocation.totals();
        for (std::size_t r = 0; r < shape.resources; ++r) {
            const double factor = capacity.capacity(r) / sums[r];
            for (std::size_t i = 0; i < shape.agents; ++i)
                allocation.at(i, r) *= factor;
        }
    }
    return allocation;
}

WelfareMechanism
makeMaxWelfareUnfair()
{
    return WelfareMechanism(WelfareObjective::NashProduct, false);
}

WelfareMechanism
makeEqualSlowdown()
{
    return WelfareMechanism(WelfareObjective::MaxMin, false);
}

WelfareMechanism
makeMaxWelfareFair()
{
    return WelfareMechanism(WelfareObjective::NashProduct, true);
}

WelfareMechanism
makeEgalitarianFair()
{
    return WelfareMechanism(WelfareObjective::MaxMin, true);
}

} // namespace ref::core
