/**
 * @file
 * Edgeworth-box analysis for two agents sharing two resources
 * (paper Section 3, Figures 1-7).
 *
 * Coordinates follow the paper: (x1, y1) is user 1's bundle of
 * resource 0 (box width, e.g. memory bandwidth) and resource 1 (box
 * height, e.g. cache); user 2 implicitly holds the complement
 * (C0 - x1, C1 - y1).
 */

#ifndef REF_CORE_EDGEWORTH_HH
#define REF_CORE_EDGEWORTH_HH

#include <optional>

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/** Two-agent, two-resource analysis toolkit. */
class EdgeworthBox
{
  public:
    /**
     * @pre capacity spans exactly two resources; both agents'
     *      utilities span two resources.
     */
    EdgeworthBox(Agent user1, Agent user2, SystemCapacity capacity);

    /** Box width: total of resource 0. */
    double width() const { return capacity_.capacity(0); }

    /** Box height: total of resource 1. */
    double height() const { return capacity_.capacity(1); }

    const Agent &user1() const { return user1_; }
    const Agent &user2() const { return user2_; }
    const SystemCapacity &capacity() const { return capacity_; }

    /** Expand a point to the full two-agent allocation. */
    Allocation toAllocation(double x1, double y1) const;

    /**
     * The contract curve (Eq. 10): for user 1's amount x1 of
     * resource 0, the y1 making both users' MRS equal. Closed form
     * for Cobb-Douglas. @pre 0 < x1 < width().
     */
    double contractCurve(double x1) const;

    /**
     * Envy-free boundary for a user (1 or 2): the y1 at which that
     * user is exactly indifferent between the two bundles, if it
     * exists in (0, height()). User 1 is envy-free above its
     * boundary; user 2 below its own. @pre 0 < x1 < width().
     */
    std::optional<double> envyBoundary(int user, double x1) const;

    /**
     * Sharing-incentive boundary for a user: the y1 at which the
     * user's utility equals its equal-split utility, if any. User 1
     * satisfies SI above its boundary; user 2 below its own.
     * @pre 0 < x1 < width().
     */
    std::optional<double> sharingIncentiveBoundary(int user,
                                                   double x1) const;

    /**
     * Indifference curve of a user through a reference bundle: the
     * y (in that user's own coordinates) giving the same utility at
     * amount x of resource 0.
     */
    double indifferenceCurve(int user, const Vector &through,
                             double x) const;

    /** Point predicates on box coordinates (x1, y1). */
    bool isEnvyFree(double x1, double y1, double tol = 1e-9) const;
    bool hasSharingIncentives(double x1, double y1,
                              double tol = 1e-9) const;
    bool isParetoEfficient(double x1, double y1,
                           double tol = 1e-6) const;

    /** A segment [x1Low, x1High] of the contract curve. */
    struct Segment
    {
        double x1Low = 0;
        double x1High = 0;
        bool empty = true;
    };

    /**
     * The fair set (Fig. 6): the part of the contract curve that is
     * envy-free for both users; optionally also constrained by SI
     * (Fig. 7). Endpoints located by bisection.
     */
    Segment fairSegment(bool with_sharing_incentives) const;

  private:
    /** Bundle of the given user implied by box point (x1, y1). */
    Vector bundleOf(int user, double x1, double y1) const;

    Agent user1_;
    Agent user2_;
    SystemCapacity capacity_;
};

} // namespace ref::core

#endif // REF_CORE_EDGEWORTH_HH
