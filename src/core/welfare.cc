#include "welfare.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ref::core {

double
weightedUtility(const Agent &agent, const Vector &bundle,
                const SystemCapacity &capacity)
{
    const auto &utility = agent.utility();
    REF_REQUIRE(utility.resources() == capacity.count(),
                "utility/capacity resource mismatch");
    const double log_own = utility.logValue(bundle);
    const double log_full = utility.logValue(capacity.capacities());
    if (std::isinf(log_own))
        return 0.0;
    return std::exp(log_own - log_full);
}

std::vector<double>
weightedUtilities(const AgentList &agents, const Allocation &allocation,
                  const SystemCapacity &capacity)
{
    REF_REQUIRE(agents.size() == allocation.agents(),
                "agents/allocation size mismatch");
    std::vector<double> utilities(agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i) {
        utilities[i] = weightedUtility(agents[i],
                                       allocation.agentShare(i),
                                       capacity);
    }
    return utilities;
}

double
weightedSystemThroughput(const AgentList &agents,
                         const Allocation &allocation,
                         const SystemCapacity &capacity)
{
    double total = 0;
    for (double value : weightedUtilities(agents, allocation, capacity))
        total += value;
    return total;
}

double
nashWelfare(const AgentList &agents, const Allocation &allocation,
            const SystemCapacity &capacity)
{
    double product = 1;
    for (double value : weightedUtilities(agents, allocation, capacity))
        product *= value;
    return product;
}

double
egalitarianWelfare(const AgentList &agents, const Allocation &allocation,
                   const SystemCapacity &capacity)
{
    const auto utilities =
        weightedUtilities(agents, allocation, capacity);
    return *std::min_element(utilities.begin(), utilities.end());
}

double
unfairnessIndex(const AgentList &agents, const Allocation &allocation,
                const SystemCapacity &capacity)
{
    const auto utilities =
        weightedUtilities(agents, allocation, capacity);
    const double worst =
        *std::min_element(utilities.begin(), utilities.end());
    const double best =
        *std::max_element(utilities.begin(), utilities.end());
    REF_REQUIRE(worst > 0, "unfairness index undefined when an agent "
                           "has zero utility");
    return best / worst;
}

} // namespace ref::core
