/**
 * @file
 * Persistence for performance profiles and fitted utilities.
 *
 * Profiling runs are expensive (the paper's 25-configuration sweeps
 * took full-system simulations); a deployable mechanism stores the
 * profiles and the fitted elasticities and reloads them at
 * allocation time. Plain CSV keeps the artifacts inspectable and
 * plottable.
 */

#ifndef REF_CORE_PROFILE_IO_HH
#define REF_CORE_PROFILE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/agent.hh"
#include "core/fitting.hh"

namespace ref::core {

/**
 * Write a profile as CSV: header "x0,x1,...,performance", one row
 * per sample.
 */
void writeProfileCsv(std::ostream &os,
                     const PerformanceProfile &profile);

/**
 * Parse a profile written by writeProfileCsv (or by hand: any CSV
 * whose last column is performance and whose other columns are
 * resource amounts). Throws FatalError on malformed input.
 */
PerformanceProfile readProfileCsv(std::istream &is);

/**
 * Write agents as CSV: header "name,scale,alpha0,alpha1,...", one
 * row per agent. All agents must span the same resource count.
 */
void writeAgentsCsv(std::ostream &os, const AgentList &agents);

/**
 * Parse agents written by writeAgentsCsv. Throws FatalError on
 * malformed input (bad numbers, inconsistent widths, non-positive
 * elasticities).
 */
AgentList readAgentsCsv(std::istream &is);

} // namespace ref::core

#endif // REF_CORE_PROFILE_IO_HH
