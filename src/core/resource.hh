/**
 * @file
 * Resource descriptions and system capacities.
 *
 * A SystemCapacity lists the R shared hardware resources (paper
 * notation C_1..C_R), e.g. 12 MB of last-level cache and 24 GB/s of
 * memory bandwidth for the running example of Section 3.
 */

#ifndef REF_CORE_RESOURCE_HH
#define REF_CORE_RESOURCE_HH

#include <string>
#include <vector>

#include "linalg/matrix.hh"

namespace ref::core {

using linalg::Vector;

/** One shared hardware resource with its total capacity. */
struct Resource
{
    std::string name;     //!< e.g. "memory-bandwidth".
    std::string unit;     //!< e.g. "GB/s".
    double capacity = 0;  //!< Total amount available, C_r > 0.
};

/** The capacities of all shared resources in a system. */
class SystemCapacity
{
  public:
    /** @pre at least one resource, all capacities positive. */
    explicit SystemCapacity(std::vector<Resource> resources);

    /** Convenience: r unnamed resources of the given capacities. */
    static SystemCapacity fromCapacities(const Vector &capacities);

    /** The §3 running example: 24 GB/s bandwidth, 12 MB cache. */
    static SystemCapacity cacheAndBandwidthExample();

    /** Number of resource types R. */
    std::size_t count() const { return resources_.size(); }

    /** Capacity C_r. */
    double capacity(std::size_t r) const;

    /** Resource metadata. */
    const Resource &resource(std::size_t r) const;

    /** All capacities as a vector (C_1, ..., C_R). */
    Vector capacities() const;

    /** The equal split (C_1/n, ..., C_R/n). @pre n > 0. */
    Vector equalShare(std::size_t n) const;

  private:
    std::vector<Resource> resources_;
};

} // namespace ref::core

#endif // REF_CORE_RESOURCE_HH
