#include "ceei.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::core {

CeeiMarket::CeeiMarket(AgentList agents, SystemCapacity capacity)
    : agents_(std::move(agents)), capacity_(std::move(capacity))
{
    REF_REQUIRE(!agents_.empty(), "market needs at least one agent");
    for (auto &agent : agents_) {
        REF_REQUIRE(agent.utility().resources() == capacity_.count(),
                    "agent '" << agent.name()
                        << "' utility does not span the capacity");
        agent.setUtility(agent.utility().rescaled());
    }
}

Vector
CeeiMarket::demand(std::size_t agent, const Vector &prices,
                   double budget) const
{
    REF_REQUIRE(agent < agents_.size(), "agent index out of range");
    REF_REQUIRE(prices.size() == capacity_.count(),
                "price vector size mismatch");
    REF_REQUIRE(budget > 0, "budget must be positive");

    // A Cobb-Douglas consumer spends the elasticity fraction of its
    // budget on each resource.
    const auto &alphas = agents_[agent].utility().elasticities();
    Vector bundle(prices.size());
    for (std::size_t r = 0; r < prices.size(); ++r) {
        REF_REQUIRE(prices[r] > 0, "price " << r << " must be positive");
        bundle[r] = alphas[r] * budget / prices[r];
    }
    return bundle;
}

CeeiSolution
CeeiMarket::solveClosedForm() const
{
    const std::size_t n = agents_.size();
    const double budget = 1.0 / static_cast<double>(n);

    CeeiSolution solution;
    solution.prices.resize(capacity_.count());
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        double elasticity_sum = 0;
        for (const auto &agent : agents_)
            elasticity_sum += agent.utility().elasticity(r);
        solution.prices[r] =
            elasticity_sum * budget / capacity_.capacity(r);
    }

    solution.allocation = Allocation(n, capacity_.count());
    for (std::size_t i = 0; i < n; ++i) {
        solution.allocation.setAgentShare(
            i, demand(i, solution.prices, budget));
    }
    solution.converged = true;
    return solution;
}

CeeiSolution
CeeiMarket::solveTatonnement(const TatonnementOptions &options) const
{
    const std::size_t n = agents_.size();
    const std::size_t r_count = capacity_.count();
    const double budget = 1.0 / static_cast<double>(n);

    // Start from uniform value shares: every resource carries the
    // same total expenditure.
    Vector prices(r_count);
    for (std::size_t r = 0; r < r_count; ++r) {
        prices[r] = 1.0 / (static_cast<double>(r_count) *
                           capacity_.capacity(r));
    }

    CeeiSolution solution;
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        // Aggregate demand at current prices.
        Vector total_demand(r_count, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const Vector bundle = demand(i, prices, budget);
            for (std::size_t r = 0; r < r_count; ++r)
                total_demand[r] += bundle[r];
        }

        double worst_excess = 0;
        for (std::size_t r = 0; r < r_count; ++r) {
            const double relative_excess =
                (total_demand[r] - capacity_.capacity(r)) /
                capacity_.capacity(r);
            worst_excess =
                std::max(worst_excess, std::abs(relative_excess));
        }

        solution.iterations = iter + 1;
        if (worst_excess <= options.tolerance) {
            solution.converged = true;
            break;
        }

        // Raise prices of over-demanded resources, lower the rest.
        for (std::size_t r = 0; r < r_count; ++r) {
            const double relative_excess =
                (total_demand[r] - capacity_.capacity(r)) /
                capacity_.capacity(r);
            prices[r] *= 1.0 + options.stepSize * relative_excess;
        }
        // Re-normalize so total market value stays at 1.
        double market_value = 0;
        for (std::size_t r = 0; r < r_count; ++r)
            market_value += prices[r] * capacity_.capacity(r);
        for (std::size_t r = 0; r < r_count; ++r)
            prices[r] /= market_value;
    }

    solution.prices = prices;
    solution.allocation = Allocation(n, r_count);
    for (std::size_t i = 0; i < n; ++i)
        solution.allocation.setAgentShare(i, demand(i, prices, budget));
    return solution;
}

} // namespace ref::core
