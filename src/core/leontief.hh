/**
 * @file
 * Leontief (perfect-complement) utilities, the preference domain of
 * prior multi-resource fairness work (DRF). Implemented for the
 * paper's comparison: Leontief permits no substitution, so its
 * indifference curves are L-shaped (Fig. 4) and its MRS is 0 or
 * infinite.
 */

#ifndef REF_CORE_LEONTIEF_HH
#define REF_CORE_LEONTIEF_HH

#include "linalg/matrix.hh"

namespace ref::core {

using linalg::Vector;

/**
 * u(x) = min over demanded resources of x_r / d_r for a demand
 * vector d (e.g. "2 CPUs, 4 GB DRAM" per task in DRF). Resources
 * with zero demand are ignored (a CPU-only task does not care about
 * DRAM), matching the DRF formulation.
 */
class LeontiefUtility
{
  public:
    /** @pre demands non-negative with at least one positive. */
    explicit LeontiefUtility(Vector demands);

    std::size_t resources() const { return demands_.size(); }

    /** Demand d_r for resource r. */
    double demand(std::size_t r) const;

    const Vector &demands() const { return demands_; }

    /** Evaluate u(x) = min_r x_r / d_r. @pre x_r >= 0. */
    double value(const Vector &allocation) const;

    /**
     * The resource(s) that bind at x: indices attaining the min.
     * Extra amounts of non-binding resources are wasted.
     */
    std::vector<std::size_t> bindingResources(
        const Vector &allocation, double tolerance = 1e-12) const;

    /**
     * The cheapest allocation giving the same utility as x — the
     * corner of x's L-shaped indifference curve. Everything beyond
     * it is waste.
     */
    Vector minimalEquivalent(const Vector &allocation) const;

    /** x weakly preferred to y. */
    bool weaklyPrefers(const Vector &x, const Vector &y,
                       double tolerance = 1e-12) const;

  private:
    Vector demands_;
};

} // namespace ref::core

#endif // REF_CORE_LEONTIEF_HH
