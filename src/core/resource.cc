#include "resource.hh"

#include "util/logging.hh"

namespace ref::core {

SystemCapacity::SystemCapacity(std::vector<Resource> resources)
    : resources_(std::move(resources))
{
    REF_REQUIRE(!resources_.empty(), "a system needs at least one "
                                     "resource");
    for (std::size_t r = 0; r < resources_.size(); ++r) {
        REF_REQUIRE(resources_[r].capacity > 0,
                    "resource " << r << " ('" << resources_[r].name
                        << "') has non-positive capacity "
                        << resources_[r].capacity);
    }
}

SystemCapacity
SystemCapacity::fromCapacities(const Vector &capacities)
{
    std::vector<Resource> resources;
    resources.reserve(capacities.size());
    for (std::size_t r = 0; r < capacities.size(); ++r) {
        resources.push_back(
            {"resource-" + std::to_string(r), "", capacities[r]});
    }
    return SystemCapacity(std::move(resources));
}

SystemCapacity
SystemCapacity::cacheAndBandwidthExample()
{
    return SystemCapacity({
        {"memory-bandwidth", "GB/s", 24.0},
        {"cache-size", "MB", 12.0},
    });
}

double
SystemCapacity::capacity(std::size_t r) const
{
    REF_REQUIRE(r < resources_.size(),
                "resource index " << r << " outside " << resources_.size());
    return resources_[r].capacity;
}

const Resource &
SystemCapacity::resource(std::size_t r) const
{
    REF_REQUIRE(r < resources_.size(),
                "resource index " << r << " outside " << resources_.size());
    return resources_[r];
}

Vector
SystemCapacity::capacities() const
{
    Vector caps(resources_.size());
    for (std::size_t r = 0; r < resources_.size(); ++r)
        caps[r] = resources_[r].capacity;
    return caps;
}

Vector
SystemCapacity::equalShare(std::size_t n) const
{
    REF_REQUIRE(n > 0, "equal share among zero agents");
    Vector share = capacities();
    for (double &value : share)
        value /= static_cast<double>(n);
    return share;
}

} // namespace ref::core
