#include "cobb_douglas.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/math.hh"

namespace ref::core {

CobbDouglasUtility::CobbDouglasUtility(double scale, Vector elasticities)
    : scale_(scale), elasticities_(std::move(elasticities))
{
    REF_REQUIRE(std::isfinite(scale_) && scale_ > 0,
                "scale a0 must be positive and finite, got " << scale_);
    REF_REQUIRE(!elasticities_.empty(),
                "utility needs at least one resource");
    for (std::size_t r = 0; r < elasticities_.size(); ++r) {
        REF_REQUIRE(std::isfinite(elasticities_[r]) &&
                        elasticities_[r] > 0,
                    "elasticity " << r
                        << " must be positive and finite, got "
                        << elasticities_[r]);
    }
}

CobbDouglasUtility::CobbDouglasUtility(Vector elasticities)
    : CobbDouglasUtility(1.0, std::move(elasticities))
{
}

double
CobbDouglasUtility::elasticity(std::size_t r) const
{
    REF_REQUIRE(r < elasticities_.size(),
                "resource " << r << " outside " << elasticities_.size());
    return elasticities_[r];
}

double
CobbDouglasUtility::elasticitySum() const
{
    double total = 0;
    for (double alpha : elasticities_)
        total += alpha;
    return total;
}

double
CobbDouglasUtility::value(const Vector &allocation) const
{
    const double log_value = logValue(allocation);
    return std::isinf(log_value) ? 0.0 : std::exp(log_value);
}

double
CobbDouglasUtility::logValue(const Vector &allocation) const
{
    REF_REQUIRE(allocation.size() == elasticities_.size(),
                "allocation has " << allocation.size()
                    << " resources, utility has " << elasticities_.size());
    double total = std::log(scale_);
    for (std::size_t r = 0; r < allocation.size(); ++r) {
        REF_REQUIRE(allocation[r] >= 0,
                    "negative allocation " << allocation[r]
                        << " for resource " << r);
        if (allocation[r] == 0)
            return -std::numeric_limits<double>::infinity();
        total += elasticities_[r] * std::log(allocation[r]);
    }
    return total;
}

double
CobbDouglasUtility::marginalRateOfSubstitution(
    std::size_t r, std::size_t s, const Vector &allocation) const
{
    REF_REQUIRE(r < resources() && s < resources(),
                "resource pair (" << r << "," << s << ") outside "
                    << resources());
    REF_REQUIRE(allocation.size() == resources(),
                "allocation size mismatch");
    REF_REQUIRE(allocation[r] > 0 && allocation[s] > 0,
                "MRS undefined at a zero allocation");
    return (elasticities_[r] / elasticities_[s]) *
           (allocation[s] / allocation[r]);
}

CobbDouglasUtility
CobbDouglasUtility::rescaled() const
{
    return CobbDouglasUtility(1.0, normalizeToUnitSum(elasticities_));
}

bool
CobbDouglasUtility::isRescaled(double tolerance) const
{
    return std::abs(elasticitySum() - 1.0) <= tolerance &&
           almostEqual(scale_, 1.0, tolerance);
}

bool
CobbDouglasUtility::strictlyPrefers(const Vector &x,
                                    const Vector &y) const
{
    return logValue(x) > logValue(y);
}

bool
CobbDouglasUtility::indifferent(const Vector &x, const Vector &y,
                                double tolerance) const
{
    const double lx = logValue(x);
    const double ly = logValue(y);
    if (std::isinf(lx) && std::isinf(ly))
        return true;
    return std::abs(lx - ly) <= tolerance;
}

bool
CobbDouglasUtility::weaklyPrefers(const Vector &x, const Vector &y,
                                  double tolerance) const
{
    const double lx = logValue(x);
    const double ly = logValue(y);
    if (std::isinf(ly))
        return true;
    return lx >= ly - tolerance;
}

} // namespace ref::core
