#include "allocation.hh"

#include <cmath>

#include "util/logging.hh"

namespace ref::core {

Allocation::Allocation(std::size_t agents, std::size_t resources)
    : amounts_(agents, resources)
{
    REF_REQUIRE(agents > 0, "allocation needs at least one agent");
    REF_REQUIRE(resources > 0, "allocation needs at least one resource");
}

Allocation
Allocation::equalSplit(std::size_t agents, const SystemCapacity &capacity)
{
    Allocation allocation(agents, capacity.count());
    const Vector share = capacity.equalShare(agents);
    for (std::size_t i = 0; i < agents; ++i)
        allocation.setAgentShare(i, share);
    return allocation;
}

double &
Allocation::at(std::size_t agent, std::size_t resource)
{
    return amounts_(agent, resource);
}

double
Allocation::at(std::size_t agent, std::size_t resource) const
{
    return amounts_(agent, resource);
}

Vector
Allocation::agentShare(std::size_t agent) const
{
    return amounts_.row(agent);
}

void
Allocation::setAgentShare(std::size_t agent, const Vector &share)
{
    REF_REQUIRE(share.size() == resources(),
                "bundle has " << share.size() << " resources, expected "
                    << resources());
    for (std::size_t r = 0; r < share.size(); ++r)
        amounts_(agent, r) = share[r];
}

Vector
Allocation::totals() const
{
    Vector sums(resources(), 0.0);
    for (std::size_t i = 0; i < agents(); ++i)
        for (std::size_t r = 0; r < resources(); ++r)
            sums[r] += amounts_(i, r);
    return sums;
}

bool
Allocation::feasible(const SystemCapacity &capacity,
                     double tolerance) const
{
    REF_REQUIRE(capacity.count() == resources(),
                "capacity has " << capacity.count()
                    << " resources, allocation has " << resources());
    for (std::size_t i = 0; i < agents(); ++i)
        for (std::size_t r = 0; r < resources(); ++r)
            if (amounts_(i, r) < 0)
                return false;

    const Vector sums = totals();
    for (std::size_t r = 0; r < resources(); ++r) {
        if (sums[r] > capacity.capacity(r) * (1.0 + tolerance))
            return false;
    }
    return true;
}

bool
Allocation::exhaustive(const SystemCapacity &capacity,
                       double tolerance) const
{
    if (!feasible(capacity, tolerance))
        return false;
    const Vector sums = totals();
    for (std::size_t r = 0; r < resources(); ++r) {
        const double cap = capacity.capacity(r);
        if (std::abs(sums[r] - cap) > cap * tolerance)
            return false;
    }
    return true;
}

Vector
Allocation::fractions(std::size_t agent,
                      const SystemCapacity &capacity) const
{
    REF_REQUIRE(capacity.count() == resources(),
                "capacity/allocation resource mismatch");
    Vector result(resources());
    for (std::size_t r = 0; r < resources(); ++r)
        result[r] = amounts_(agent, r) / capacity.capacity(r);
    return result;
}

} // namespace ref::core
