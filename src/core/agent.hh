/**
 * @file
 * An agent (user/task) sharing the system, identified by name and
 * described by its Cobb-Douglas utility.
 */

#ifndef REF_CORE_AGENT_HH
#define REF_CORE_AGENT_HH

#include <string>
#include <utility>
#include <vector>

#include "core/cobb_douglas.hh"

namespace ref::core {

/** One user of the shared system. */
class Agent
{
  public:
    Agent(std::string name, CobbDouglasUtility utility)
        : name_(std::move(name)), utility_(std::move(utility))
    {}

    const std::string &name() const { return name_; }
    const CobbDouglasUtility &utility() const { return utility_; }

    /** Replace the utility (used by on-line profiling, §4.4). */
    void setUtility(CobbDouglasUtility utility)
    {
        utility_ = std::move(utility);
    }

  private:
    std::string name_;
    CobbDouglasUtility utility_;
};

/** Agents participating in an allocation round. */
using AgentList = std::vector<Agent>;

} // namespace ref::core

#endif // REF_CORE_AGENT_HH
