#include "profile_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace ref::core {

namespace {

/** Split one CSV line on commas (no quoting needed for our files). */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

double
parseNumber(const std::string &cell, const char *context)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(cell, &consumed);
        REF_REQUIRE(consumed == cell.size(),
                    "trailing characters in " << context << " value '"
                        << cell << "'");
        return value;
    } catch (const std::invalid_argument &) {
        REF_FATAL("cannot parse " << context << " value '" << cell
                                  << "'");
    } catch (const std::out_of_range &) {
        REF_FATAL(context << " value '" << cell << "' out of range");
    }
}

} // namespace

void
writeProfileCsv(std::ostream &os, const PerformanceProfile &profile)
{
    REF_REQUIRE(!profile.empty(), "cannot write an empty profile");
    const std::size_t resources = profile.front().allocation.size();

    std::vector<std::string> header;
    for (std::size_t r = 0; r < resources; ++r)
        header.push_back("x" + std::to_string(r));
    header.push_back("performance");

    CsvWriter csv(os, header);
    for (const auto &point : profile) {
        REF_REQUIRE(point.allocation.size() == resources,
                    "profile rows have inconsistent resource counts");
        std::vector<double> row = point.allocation;
        row.push_back(point.performance);
        csv.writeRow(row);
    }
}

PerformanceProfile
readProfileCsv(std::istream &is)
{
    std::string line;
    REF_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "profile CSV is empty");
    const auto header = splitCsvLine(line);
    REF_REQUIRE(header.size() >= 2,
                "profile CSV needs at least one resource column and "
                "a performance column");
    const std::size_t resources = header.size() - 1;

    PerformanceProfile profile;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty())
            continue;
        const auto cells = splitCsvLine(line);
        REF_REQUIRE(cells.size() == header.size(),
                    "line " << line_number << " has " << cells.size()
                            << " cells, expected " << header.size());
        ProfilePoint point;
        point.allocation.resize(resources);
        for (std::size_t r = 0; r < resources; ++r)
            point.allocation[r] = parseNumber(cells[r], "allocation");
        point.performance =
            parseNumber(cells.back(), "performance");
        profile.push_back(std::move(point));
    }
    REF_REQUIRE(!profile.empty(), "profile CSV has no data rows");
    return profile;
}

void
writeAgentsCsv(std::ostream &os, const AgentList &agents)
{
    REF_REQUIRE(!agents.empty(), "cannot write an empty agent list");
    const std::size_t resources =
        agents.front().utility().resources();

    std::vector<std::string> header{"name", "scale"};
    for (std::size_t r = 0; r < resources; ++r)
        header.push_back("alpha" + std::to_string(r));

    CsvWriter csv(os, header);
    for (const auto &agent : agents) {
        const auto &utility = agent.utility();
        REF_REQUIRE(utility.resources() == resources,
                    "agents have inconsistent resource counts");
        std::vector<std::string> row{agent.name(),
                                     std::to_string(utility.scale())};
        for (std::size_t r = 0; r < resources; ++r)
            row.push_back(std::to_string(utility.elasticity(r)));
        csv.writeRow(row);
    }
}

AgentList
readAgentsCsv(std::istream &is)
{
    std::string line;
    REF_REQUIRE(static_cast<bool>(std::getline(is, line)),
                "agents CSV is empty");
    const auto header = splitCsvLine(line);
    REF_REQUIRE(header.size() >= 3,
                "agents CSV needs name, scale and at least one "
                "elasticity column");
    const std::size_t resources = header.size() - 2;

    AgentList agents;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty())
            continue;
        const auto cells = splitCsvLine(line);
        REF_REQUIRE(cells.size() == header.size(),
                    "line " << line_number << " has " << cells.size()
                            << " cells, expected " << header.size());
        const double scale = parseNumber(cells[1], "scale");
        Vector elasticities(resources);
        for (std::size_t r = 0; r < resources; ++r)
            elasticities[r] = parseNumber(cells[2 + r], "elasticity");
        agents.emplace_back(
            cells[0], CobbDouglasUtility(scale, elasticities));
    }
    REF_REQUIRE(!agents.empty(), "agents CSV has no data rows");
    return agents;
}

} // namespace ref::core
