/**
 * @file
 * Optimization-based allocation mechanisms (paper Section 4.5).
 *
 * The paper compares proportional elasticity against mechanisms that
 * explicitly optimize welfare, solved with geometric programming:
 *
 *  - "Max Welfare w/o Fairness": maximize Nash social welfare
 *    prod_i U_i subject only to capacity (empirical upper bound).
 *  - "Equal Slowdown w/o Fairness": maximize min_i U_i (the max-min
 *    objective that equalizes slowdown, prior work's approach).
 *  - "Max Welfare w/ Fairness": Nash welfare subject to the SI, EF,
 *    and PE conditions of Eq. 11.
 *  - "Egalitarian w/ Fairness": max-min subject to the same
 *    conditions (empirical lower bound on fair performance).
 *
 * All are monomial/posynomial programs: after the change of
 * variables y = log x the objective and the SI/EF/PE conditions are
 * linear and capacity becomes log-sum-exp, so each program is smooth
 * and convex. We solve them with the quadratic-penalty solver (the
 * fairness-constrained feasible sets can have an empty interior, so
 * a barrier method is not generally applicable).
 */

#ifndef REF_CORE_WELFARE_MECHANISMS_HH
#define REF_CORE_WELFARE_MECHANISMS_HH

#include "core/mechanism.hh"
#include "solver/penalty.hh"

namespace ref::core {

/** Objective choices for WelfareMechanism. */
enum class WelfareObjective
{
    NashProduct,  //!< maximize prod_i U_i (log-sum objective).
    MaxMin,       //!< maximize min_i U_i (equal slowdown).
};

/** Geometric-programming welfare mechanism. */
class WelfareMechanism : public AllocationMechanism
{
  public:
    /** Tuning for the underlying penalty solve. */
    struct Options
    {
        solver::PenaltyOptions penalty;
        /**
         * Scale solved totals so each resource is exactly fully
         * allocated; keeps reports clean against round-off.
         */
        bool projectToCapacity = true;
    };

    WelfareMechanism(WelfareObjective objective, bool with_fairness);

    WelfareMechanism(WelfareObjective objective, bool with_fairness,
                     Options options);

    std::string name() const override;

    Allocation allocate(const AgentList &agents,
                        const SystemCapacity &capacity) const override;

    WelfareObjective objective() const { return objective_; }
    bool withFairness() const { return withFairness_; }

  private:
    WelfareObjective objective_;
    bool withFairness_;
    Options options_;
};

/** "Max Welfare w/o Fairness": the empirical throughput upper bound. */
WelfareMechanism makeMaxWelfareUnfair();

/** "Equal Slowdown w/o Fairness": prior work's max-min objective. */
WelfareMechanism makeEqualSlowdown();

/** "Max Welfare w/ Fairness": Nash welfare under Eq. 11 conditions. */
WelfareMechanism makeMaxWelfareFair();

/** "Egalitarian w/ Fairness": max-min under Eq. 11 conditions. */
WelfareMechanism makeEgalitarianFair();

} // namespace ref::core

#endif // REF_CORE_WELFARE_MECHANISMS_HH
