#include "strategic.hh"

#include <cmath>

#include "solver/nelder_mead.hh"
#include "solver/scalar.hh"
#include "util/logging.hh"
#include "util/math.hh"

namespace ref::core {

StrategicAnalysis::StrategicAnalysis(AgentList agents,
                                     SystemCapacity capacity)
    : agents_(std::move(agents)), capacity_(std::move(capacity))
{
    REF_REQUIRE(agents_.size() >= 2,
                "strategic analysis needs at least two agents");
    for (auto &agent : agents_) {
        REF_REQUIRE(agent.utility().resources() == capacity_.count(),
                    "agent '" << agent.name()
                        << "' utility does not span the capacity");
        agent.setUtility(agent.utility().rescaled());
    }
}

Vector
StrategicAnalysis::othersElasticitySum(std::size_t agent) const
{
    Vector sums(capacity_.count(), 0.0);
    for (std::size_t j = 0; j < agents_.size(); ++j) {
        if (j == agent)
            continue;
        const auto &alphas = agents_[j].utility().elasticities();
        for (std::size_t r = 0; r < sums.size(); ++r)
            sums[r] += alphas[r];
    }
    return sums;
}

double
StrategicAnalysis::utilityFromReport(std::size_t agent,
                                     const Vector &report) const
{
    REF_REQUIRE(agent < agents_.size(), "agent index out of range");
    REF_REQUIRE(report.size() == capacity_.count(),
                "report size mismatch");
    const Vector rescaled_report = normalizeToUnitSum(report);
    const Vector others = othersElasticitySum(agent);
    const auto &true_alphas = agents_[agent].utility().elasticities();

    // Allocation share induced by the report, valued with the true
    // elasticities (Eq. 15).
    double log_utility = 0;
    for (std::size_t r = 0; r < capacity_.count(); ++r) {
        const double share = rescaled_report[r] /
                             (rescaled_report[r] + others[r]) *
                             capacity_.capacity(r);
        log_utility += true_alphas[r] * std::log(share);
    }
    return std::exp(log_utility);
}

BestResponse
StrategicAnalysis::bestResponse(std::size_t agent) const
{
    REF_REQUIRE(agent < agents_.size(), "agent index out of range");
    const std::size_t r_count = capacity_.count();
    const auto &true_alphas = agents_[agent].utility().elasticities();

    BestResponse response;
    response.truthfulUtility = utilityFromReport(agent, true_alphas);

    if (r_count == 2) {
        // One free variable: the report is (t, 1 - t).
        constexpr double edge = 1e-9;
        const auto objective = [&](double t) {
            return -utilityFromReport(agent, {t, 1.0 - t});
        };
        const auto best =
            solver::brentMinimize(objective, edge, 1.0 - edge, 1e-14);
        response.report = {best.x, 1.0 - best.x};
        response.utility = -best.value;
    } else {
        // Softmax parameterization keeps the search unconstrained;
        // coordinate 0 is pinned to zero to remove the scale
        // degeneracy.
        const auto to_simplex = [r_count](const Vector &z) {
            Vector report(r_count);
            double total = 1.0;  // exp(0) for the pinned coordinate.
            report[0] = 1.0;
            for (std::size_t r = 1; r < r_count; ++r) {
                report[r] = std::exp(z[r - 1]);
                total += report[r];
            }
            for (double &value : report)
                value /= total;
            return report;
        };

        Vector start(r_count - 1);
        for (std::size_t r = 1; r < r_count; ++r)
            start[r - 1] = std::log(true_alphas[r] / true_alphas[0]);

        const auto objective = [&](const Vector &z) {
            return -utilityFromReport(agent, to_simplex(z));
        };
        solver::NelderMeadOptions options;
        options.maxIterations = 5000;
        options.tolerance = 1e-14;
        const auto best = solver::nelderMead(objective, start, options);
        response.report = to_simplex(best.point);
        response.utility = -best.value;
    }

    // Numerical search can end epsilon below truthful; lying never
    // loses relative to the truthful report it could always make.
    if (response.utility < response.truthfulUtility) {
        response.utility = response.truthfulUtility;
        response.report = true_alphas;
    }
    response.gainRatio = response.utility / response.truthfulUtility;
    for (std::size_t r = 0; r < r_count; ++r) {
        response.reportDeviation =
            std::max(response.reportDeviation,
                     std::abs(response.report[r] - true_alphas[r]));
    }
    return response;
}

} // namespace ref::core
