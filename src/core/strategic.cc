#include "strategic.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solver/nelder_mead.hh"
#include "solver/scalar.hh"
#include "util/logging.hh"
#include "util/math.hh"

namespace ref::core {

StrategicAnalysis::StrategicAnalysis(AgentList agents,
                                     SystemCapacity capacity)
    : agents_(std::move(agents)), capacity_(std::move(capacity))
{
    REF_REQUIRE(agents_.size() >= 2,
                "strategic analysis needs at least two agents");
    for (auto &agent : agents_) {
        REF_REQUIRE(agent.utility().resources() == capacity_.count(),
                    "agent '" << agent.name()
                        << "' utility does not span the capacity");
        agent.setUtility(agent.utility().rescaled());
    }
}

Vector
StrategicAnalysis::othersElasticitySum(std::size_t agent) const
{
    Vector sums(capacity_.count(), 0.0);
    for (std::size_t j = 0; j < agents_.size(); ++j) {
        if (j == agent)
            continue;
        const auto &alphas = agents_[j].utility().elasticities();
        for (std::size_t r = 0; r < sums.size(); ++r)
            sums[r] += alphas[r];
    }
    return sums;
}

namespace {

/**
 * Softmax over (0, z_1, ..., z_{R-1}) with the running maximum
 * subtracted (log-sum-exp), so arbitrarily large logits — e.g. a
 * truthful start with a near-zero pinned coordinate — never push
 * exp() to infinity and poison the simplex with NaN.
 */
Vector
softmaxSimplex(const Vector &z, std::size_t r_count)
{
    double z_max = 0.0;  // The pinned coordinate contributes logit 0.
    for (double value : z)
        z_max = std::max(z_max, value);
    Vector report(r_count);
    report[0] = std::exp(-z_max);
    double total = report[0];
    for (std::size_t r = 1; r < r_count; ++r) {
        report[r] = std::exp(z[r - 1] - z_max);
        total += report[r];
    }
    for (double &value : report)
        value /= total;
    return report;
}

/** Finite logit for a ratio that may underflow or be subnormal. */
double
clampedLogRatio(double numerator, double denominator)
{
    constexpr double limit = 40.0;  // exp(40) stays comfortably finite.
    const double ratio = std::log(numerator / denominator);
    if (!std::isfinite(ratio))
        return ratio > 0 ? limit : -limit;
    return std::min(limit, std::max(-limit, ratio));
}

} // namespace

double
utilityAgainst(const Vector &true_alphas, const Vector &others_sum,
               const SystemCapacity &capacity, const Vector &report)
{
    const std::size_t r_count = capacity.count();
    REF_REQUIRE(true_alphas.size() == r_count,
                "true elasticity size mismatch");
    REF_REQUIRE(others_sum.size() == r_count,
                "others-sum size mismatch");
    REF_REQUIRE(report.size() == r_count, "report size mismatch");
    const Vector rescaled_report = normalizeToUnitSum(report);

    // Allocation share induced by the report, valued with the true
    // elasticities (Eq. 15).
    double log_utility = 0;
    for (std::size_t r = 0; r < r_count; ++r) {
        if (true_alphas[r] == 0.0)
            continue;  // No demand: the factor is share^0 = 1.
        const double denominator = rescaled_report[r] + others_sum[r];
        const double share =
            denominator > 0
                ? rescaled_report[r] / denominator * capacity.capacity(r)
                : 0.0;
        if (share <= 0)
            return 0.0;  // Starving a needed resource: utility -> 0.
        log_utility += true_alphas[r] * std::log(share);
    }
    return std::exp(log_utility);
}

BestResponse
bestResponseAgainst(const Vector &true_alphas,
                    const Vector &others_sum,
                    const SystemCapacity &capacity)
{
    const std::size_t r_count = capacity.count();
    REF_REQUIRE(r_count >= 1, "capacity must span a resource");
    const Vector truth = normalizeToUnitSum(true_alphas);
    const auto realized = [&](const Vector &report) {
        return utilityAgainst(truth, others_sum, capacity, report);
    };

    BestResponse response;
    response.truthfulUtility = realized(truth);
    REF_REQUIRE(response.truthfulUtility > 0,
                "truthful report must yield positive utility");

    if (r_count == 1) {
        // Every report rescales to the same point; lying is
        // structurally impossible.
        response.report = truth;
        response.utility = response.truthfulUtility;
    } else if (r_count == 2) {
        // One free variable. Searching over the logit of t (report
        // (t, 1-t)) keeps full floating-point resolution at both
        // corners, where a truthful elasticity near 0 or 1 puts the
        // optimum within ~1e-12 of the simplex edge.
        const auto objective = [&](double logit) {
            const double t = 1.0 / (1.0 + std::exp(-logit));
            return -realized({t, 1.0 - t});
        };
        constexpr double span = 36.0;  // sigmoid(+-36) ~ [2e-16, 1).
        const auto best =
            solver::brentMinimize(objective, -span, span, 1e-14);
        const double t = 1.0 / (1.0 + std::exp(-best.x));
        response.report = {t, 1.0 - t};
        response.utility = -best.value;
    } else {
        // Softmax parameterization keeps the search unconstrained;
        // coordinate 0 is pinned to zero to remove the scale
        // degeneracy. Two starts — the truthful report and the
        // uniform report — guard against the simplex collapsing in
        // a corner basin.
        const auto objective = [&](const Vector &z) {
            return -realized(softmaxSimplex(z, r_count));
        };
        Vector truthful_start(r_count - 1);
        for (std::size_t r = 1; r < r_count; ++r)
            truthful_start[r - 1] = clampedLogRatio(truth[r], truth[0]);
        const Vector uniform_start(r_count - 1, 0.0);

        solver::NelderMeadOptions options;
        options.maxIterations = 5000;
        options.tolerance = 1e-14;
        response.utility = -std::numeric_limits<double>::infinity();
        for (const Vector &start : {truthful_start, uniform_start}) {
            const auto best =
                solver::nelderMead(objective, start, options);
            if (-best.value > response.utility) {
                response.report = softmaxSimplex(best.point, r_count);
                response.utility = -best.value;
            }
        }
    }

    // Numerical search can end epsilon below truthful; lying never
    // loses relative to the truthful report it could always make.
    if (!(response.utility > response.truthfulUtility)) {
        response.utility = response.truthfulUtility;
        response.report = truth;
    }
    response.gainRatio = response.utility / response.truthfulUtility;
    for (std::size_t r = 0; r < r_count; ++r) {
        response.reportDeviation =
            std::max(response.reportDeviation,
                     std::abs(response.report[r] - truth[r]));
    }
    return response;
}

double
StrategicAnalysis::utilityFromReport(std::size_t agent,
                                     const Vector &report) const
{
    REF_REQUIRE(agent < agents_.size(), "agent index out of range");
    return utilityAgainst(agents_[agent].utility().elasticities(),
                          othersElasticitySum(agent), capacity_,
                          report);
}

BestResponse
StrategicAnalysis::bestResponse(std::size_t agent) const
{
    REF_REQUIRE(agent < agents_.size(), "agent index out of range");
    return bestResponseAgainst(agents_[agent].utility().elasticities(),
                               othersElasticitySum(agent), capacity_);
}

} // namespace ref::core
