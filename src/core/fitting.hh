/**
 * @file
 * Fitting Cobb-Douglas utilities from performance profiles (paper
 * Section 4.4, Eq. 16).
 *
 * Given (allocation, performance) samples — e.g. IPC measured over a
 * sweep of cache sizes and memory bandwidths — take logs to obtain a
 * linear model log u = log a0 + sum_r a_r log x_r, and fit the
 * elasticities by ordinary least squares.
 */

#ifndef REF_CORE_FITTING_HH
#define REF_CORE_FITTING_HH

#include <vector>

#include "core/cobb_douglas.hh"

namespace ref::core {

/** One profiled sample: the allocation tried and the performance. */
struct ProfilePoint
{
    Vector allocation;    //!< Resource amounts, all positive.
    double performance;   //!< e.g. IPC; must be positive.
};

/** A performance profile over varied allocations. */
using PerformanceProfile = std::vector<ProfilePoint>;

/** A fitted Cobb-Douglas utility with fit diagnostics. */
struct CobbDouglasFit
{
    CobbDouglasUtility utility;
    /** R-squared of the log-linear regression (the paper's metric). */
    double rSquaredLog = 0;
    /** R-squared recomputed on raw (de-logged) performance. */
    double rSquaredLinear = 0;
    /** Number of elasticities clamped to the positivity floor. */
    int clampedElasticities = 0;

    /** Predicted performance for an allocation. */
    double predict(const Vector &allocation) const
    {
        return utility.value(allocation);
    }
};

/** Options controlling the fit. */
struct FitOptions
{
    /**
     * Fitted elasticities at or below zero (possible for flat,
     * noisy profiles like radiosity's) are clamped to this floor;
     * the mechanism requires strictly positive elasticities.
     */
    double elasticityFloor = 1e-3;
};

/**
 * Fit a Cobb-Douglas utility to a profile.
 *
 * @pre profile has more points than resources + 1, all allocations
 *      and performances positive, and the allocations are not
 *      collinear in log space.
 */
CobbDouglasFit fitCobbDouglas(const PerformanceProfile &profile,
                              const FitOptions &options = {});

} // namespace ref::core

#endif // REF_CORE_FITTING_HH
