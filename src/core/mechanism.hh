/**
 * @file
 * Allocation mechanism interface.
 */

#ifndef REF_CORE_MECHANISM_HH
#define REF_CORE_MECHANISM_HH

#include <string>

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/**
 * A mechanism maps reported agent utilities and system capacities to
 * an allocation. Implementations: the paper's proportional
 * elasticity mechanism (closed form), and the geometric-programming
 * alternatives of Section 4.5 used as comparison points.
 */
class AllocationMechanism
{
  public:
    virtual ~AllocationMechanism() = default;

    /** Human-readable mechanism name for reports. */
    virtual std::string name() const = 0;

    /**
     * Compute the allocation for the given agents.
     * @pre at least one agent; all utilities span capacity.count()
     *      resources.
     */
    virtual Allocation allocate(const AgentList &agents,
                                const SystemCapacity &capacity) const = 0;
};

} // namespace ref::core

#endif // REF_CORE_MECHANISM_HH
