#include "leontief.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace ref::core {

LeontiefUtility::LeontiefUtility(Vector demands)
    : demands_(std::move(demands))
{
    REF_REQUIRE(!demands_.empty(), "utility needs at least one resource");
    bool any_positive = false;
    for (std::size_t r = 0; r < demands_.size(); ++r) {
        REF_REQUIRE(demands_[r] >= 0,
                    "demand " << r << " must be non-negative, got "
                        << demands_[r]);
        any_positive = any_positive || demands_[r] > 0;
    }
    REF_REQUIRE(any_positive, "at least one demand must be positive");
}

double
LeontiefUtility::demand(std::size_t r) const
{
    REF_REQUIRE(r < demands_.size(),
                "resource " << r << " outside " << demands_.size());
    return demands_[r];
}

double
LeontiefUtility::value(const Vector &allocation) const
{
    REF_REQUIRE(allocation.size() == demands_.size(),
                "allocation has " << allocation.size()
                    << " resources, utility has " << demands_.size());
    double result = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < allocation.size(); ++r) {
        REF_REQUIRE(allocation[r] >= 0,
                    "negative allocation " << allocation[r]);
        if (demands_[r] > 0)
            result = std::min(result, allocation[r] / demands_[r]);
    }
    return result;
}

std::vector<std::size_t>
LeontiefUtility::bindingResources(const Vector &allocation,
                                  double tolerance) const
{
    const double level = value(allocation);
    std::vector<std::size_t> binding;
    for (std::size_t r = 0; r < allocation.size(); ++r) {
        if (demands_[r] > 0 &&
            allocation[r] / demands_[r] <= level + tolerance) {
            binding.push_back(r);
        }
    }
    return binding;
}

Vector
LeontiefUtility::minimalEquivalent(const Vector &allocation) const
{
    const double level = value(allocation);
    Vector minimal(demands_.size());
    for (std::size_t r = 0; r < demands_.size(); ++r)
        minimal[r] = level * demands_[r];
    return minimal;
}

bool
LeontiefUtility::weaklyPrefers(const Vector &x, const Vector &y,
                               double tolerance) const
{
    return value(x) >= value(y) - tolerance;
}

} // namespace ref::core
