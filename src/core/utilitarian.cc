#include "utilitarian.hh"

#include <cmath>
#include <limits>
#include <memory>

#include "core/gp_program.hh"
#include "core/welfare.hh"
#include "solver/penalty.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ref::core {

namespace {

using gp::ProgramShape;
using solver::LambdaFunction;
using solver::Vector;

/**
 * Minimize -sum_i U_i(y) with U_i = exp(log U_i). Convex (a sum of
 * exponentials of linear forms), so MAXIMIZING it is the non-convex
 * part: local optima sit on the capacity boundary and multi-start is
 * required.
 */
std::shared_ptr<const LambdaFunction>
makeUtilitarianObjective(const ProgramShape &shape,
                         const AgentList &agents,
                         const SystemCapacity &capacity)
{
    std::vector<Vector> alphas;
    std::vector<double> offsets;
    for (const auto &agent : agents) {
        alphas.push_back(agent.utility().elasticities());
        double offset = 0;
        for (std::size_t r = 0; r < shape.resources; ++r) {
            offset += alphas.back()[r] *
                      std::log(capacity.capacity(r));
        }
        offsets.push_back(offset);
    }

    auto log_u = [shape, alphas, offsets](const Vector &y,
                                          std::size_t i) {
        double total = -offsets[i];
        for (std::size_t r = 0; r < shape.resources; ++r)
            total += alphas[i][r] * y[shape.index(i, r)];
        return total;
    };
    auto value = [shape, log_u](const Vector &y) {
        double total = 0;
        for (std::size_t i = 0; i < shape.agents; ++i)
            total += std::exp(log_u(y, i));
        return -total;
    };
    auto gradient = [shape, alphas, log_u](const Vector &y) {
        Vector grad(y.size(), 0.0);
        for (std::size_t i = 0; i < shape.agents; ++i) {
            const double u = std::exp(log_u(y, i));
            for (std::size_t r = 0; r < shape.resources; ++r)
                grad[shape.index(i, r)] = -u * alphas[i][r];
        }
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

} // namespace

UtilitarianMechanism::UtilitarianMechanism()
    : UtilitarianMechanism(Options{})
{
}

UtilitarianMechanism::UtilitarianMechanism(Options options)
    : options_(options)
{
}

std::string
UtilitarianMechanism::name() const
{
    return options_.withFairness ? "utilitarian+fairness"
                                 : "utilitarian";
}

Allocation
UtilitarianMechanism::allocate(const AgentList &agents,
                               const SystemCapacity &capacity) const
{
    REF_REQUIRE(!agents.empty(), "no agents to allocate to");
    for (const auto &agent : agents) {
        REF_REQUIRE(agent.utility().resources() == capacity.count(),
                    "agent '" << agent.name()
                        << "' utility does not span the capacity");
    }

    const ProgramShape shape{agents.size(), capacity.count(), false};

    solver::ConstrainedProgram program;
    program.objective =
        makeUtilitarianObjective(shape, agents, capacity);
    for (std::size_t r = 0; r < shape.resources; ++r) {
        program.inequalities.push_back(
            gp::makeCapacityConstraint(shape, capacity, r));
    }
    if (options_.withFairness)
        gp::appendFairnessConstraints(shape, agents, capacity, program);

    // Deterministic starts: the equal split and one corner-biased
    // start per agent (that agent near full capacity), plus random
    // restarts. The corner starts matter: the global utilitarian
    // optimum often hands most of the machine to the most efficient
    // agent.
    std::vector<Vector> starts;
    starts.push_back(gp::equalSplitStart(shape, capacity));
    for (std::size_t winner = 0; winner < shape.agents; ++winner) {
        Vector start(shape.variables());
        for (std::size_t i = 0; i < shape.agents; ++i) {
            const double share = i == winner ? 0.8 : 0.1 /
                static_cast<double>(std::max<std::size_t>(
                    1, shape.agents - 1));
            for (std::size_t r = 0; r < shape.resources; ++r) {
                start[shape.index(i, r)] =
                    std::log(share * capacity.capacity(r));
            }
        }
        starts.push_back(start);
    }
    Rng rng(options_.seed);
    for (int extra = 0; extra < options_.randomStarts; ++extra) {
        Vector start(shape.variables());
        // Random Dirichlet-ish shares per resource.
        for (std::size_t r = 0; r < shape.resources; ++r) {
            double total = 0;
            std::vector<double> weights(shape.agents);
            for (auto &w : weights) {
                w = rng.exponential(1.0);
                total += w;
            }
            for (std::size_t i = 0; i < shape.agents; ++i) {
                start[shape.index(i, r)] = std::log(
                    0.9 * weights[i] / total * capacity.capacity(r));
            }
        }
        starts.push_back(start);
    }

    Vector best_point;
    double best_value = std::numeric_limits<double>::infinity();
    for (const auto &start : starts) {
        const auto solution = solver::solvePenalty(program, start);
        if (solution.maxViolation > 1e-5)
            continue;
        if (solution.objectiveValue < best_value) {
            best_value = solution.objectiveValue;
            best_point = solution.point;
        }
    }
    REF_REQUIRE(!best_point.empty(),
                "no utilitarian start converged to a feasible point");

    Allocation allocation(shape.agents, shape.resources);
    for (std::size_t i = 0; i < shape.agents; ++i) {
        for (std::size_t r = 0; r < shape.resources; ++r) {
            allocation.at(i, r) =
                std::exp(best_point[shape.index(i, r)]);
        }
    }
    const Vector sums = allocation.totals();
    for (std::size_t r = 0; r < shape.resources; ++r) {
        const double factor = capacity.capacity(r) / sums[r];
        for (std::size_t i = 0; i < shape.agents; ++i)
            allocation.at(i, r) *= factor;
    }
    return allocation;
}

} // namespace ref::core
