#include "fairness.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace ref::core {

namespace {

void
requireShapes(const AgentList &agents, const Allocation &allocation)
{
    REF_REQUIRE(!agents.empty(), "no agents to check");
    REF_REQUIRE(agents.size() == allocation.agents(),
                "allocation covers " << allocation.agents()
                    << " agents, got " << agents.size());
    for (const Agent &agent : agents) {
        REF_REQUIRE(agent.utility().resources() ==
                        allocation.resources(),
                    "agent '" << agent.name() << "' utility covers "
                        << agent.utility().resources()
                        << " resources, allocation has "
                        << allocation.resources());
    }
}

} // namespace

PropertyCheck
checkSharingIncentives(const AgentList &agents,
                       const SystemCapacity &capacity,
                       const Allocation &allocation,
                       const FairnessTolerance &tol)
{
    requireShapes(agents, allocation);
    REF_REQUIRE(capacity.count() == allocation.resources(),
                "capacity/allocation resource mismatch");

    const Vector equal_share = capacity.equalShare(agents.size());

    PropertyCheck check;
    check.worstSlack = std::numeric_limits<double>::infinity();
    check.satisfied = true;
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const auto &utility = agents[i].utility();
        const double own = utility.logValue(allocation.agentShare(i));
        const double split = utility.logValue(equal_share);
        const double slack = own - split;
        if (slack < check.worstSlack) {
            check.worstSlack = slack;
            std::ostringstream detail;
            detail << "agent '" << agents[i].name()
                   << "' vs equal split (log-utility slack " << slack
                   << ")";
            check.binding = detail.str();
        }
        if (slack < -tol.utility)
            check.satisfied = false;
    }
    return check;
}

PropertyCheck
checkEnvyFreeness(const AgentList &agents, const Allocation &allocation,
                  const FairnessTolerance &tol)
{
    requireShapes(agents, allocation);

    PropertyCheck check;
    check.worstSlack = std::numeric_limits<double>::infinity();
    check.satisfied = true;
    for (std::size_t i = 0; i < agents.size(); ++i) {
        const auto &utility = agents[i].utility();
        const double own = utility.logValue(allocation.agentShare(i));
        for (std::size_t j = 0; j < agents.size(); ++j) {
            if (i == j)
                continue;
            const double other =
                utility.logValue(allocation.agentShare(j));
            // Both bundles worthless: no envy either way.
            double slack;
            if (std::isinf(own) && std::isinf(other)) {
                slack = 0;
            } else {
                slack = own - other;
            }
            if (slack < check.worstSlack) {
                check.worstSlack = slack;
                std::ostringstream detail;
                detail << "agent '" << agents[i].name()
                       << "' vs bundle of '" << agents[j].name()
                       << "' (log-utility slack " << slack << ")";
                check.binding = detail.str();
            }
            if (slack < -tol.utility)
                check.satisfied = false;
        }
    }
    return check;
}

PropertyCheck
checkParetoEfficiency(const AgentList &agents,
                      const SystemCapacity &capacity,
                      const Allocation &allocation,
                      const FairnessTolerance &tol)
{
    requireShapes(agents, allocation);
    REF_REQUIRE(capacity.count() == allocation.resources(),
                "capacity/allocation resource mismatch");

    PropertyCheck check;
    check.satisfied = true;
    check.worstSlack = std::numeric_limits<double>::infinity();

    // (a) No resource may be left on the table: a Cobb-Douglas agent
    // always benefits from more of any resource.
    const Vector sums = allocation.totals();
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        const double cap = capacity.capacity(r);
        const double slack_frac = (cap - sums[r]) / cap;
        const double slack = -slack_frac;  // negative when wasteful
        if (slack < check.worstSlack) {
            check.worstSlack = slack;
            std::ostringstream detail;
            detail << "resource '" << capacity.resource(r).name
                   << "' leaves " << slack_frac * 100
                   << "% of capacity unallocated";
            check.binding = detail.str();
        }
        if (slack_frac > tol.capacity + tol.mrs)
            check.satisfied = false;
    }

    // (b) Interior tangency: all agents' MRS agree (Eq. 10). A zero
    // amount makes the MRS undefined; such corner allocations are
    // reported as not PE (see header).
    for (std::size_t i = 0; i < agents.size(); ++i) {
        for (std::size_t r = 0; r < allocation.resources(); ++r) {
            if (allocation.at(i, r) <= 0) {
                check.satisfied = false;
                std::ostringstream detail;
                detail << "agent '" << agents[i].name()
                       << "' holds none of resource '"
                       << capacity.resource(r).name << "'";
                check.binding = detail.str();
                check.worstSlack =
                    -std::numeric_limits<double>::infinity();
                return check;
            }
        }
    }

    for (std::size_t r = 1; r < allocation.resources(); ++r) {
        const double reference_mrs =
            agents[0].utility().marginalRateOfSubstitution(
                r, 0, allocation.agentShare(0));
        for (std::size_t i = 1; i < agents.size(); ++i) {
            const double mrs =
                agents[i].utility().marginalRateOfSubstitution(
                    r, 0, allocation.agentShare(i));
            const double mismatch =
                std::abs(std::log(mrs) - std::log(reference_mrs));
            const double slack = tol.mrs - mismatch;
            if (slack < check.worstSlack) {
                check.worstSlack = slack;
                std::ostringstream detail;
                detail << "MRS(" << capacity.resource(r).name << "/"
                       << capacity.resource(0).name << ") of '"
                       << agents[i].name() << "' differs from '"
                       << agents[0].name() << "' by factor "
                       << std::exp(mismatch);
                check.binding = detail.str();
            }
            if (mismatch > tol.mrs)
                check.satisfied = false;
        }
    }
    return check;
}

PropertyCheck
checkCapacity(const SystemCapacity &capacity,
              const Allocation &allocation, const FairnessTolerance &tol)
{
    REF_REQUIRE(capacity.count() == allocation.resources(),
                "capacity/allocation resource mismatch");

    PropertyCheck check;
    check.satisfied = true;
    check.worstSlack = std::numeric_limits<double>::infinity();

    for (std::size_t i = 0; i < allocation.agents(); ++i) {
        for (std::size_t r = 0; r < allocation.resources(); ++r) {
            if (allocation.at(i, r) < 0) {
                check.satisfied = false;
                check.worstSlack = allocation.at(i, r);
                check.binding = "negative amount";
                return check;
            }
        }
    }

    const Vector sums = allocation.totals();
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        const double cap = capacity.capacity(r);
        const double slack = (cap - sums[r]) / cap;
        if (slack < check.worstSlack) {
            check.worstSlack = slack;
            std::ostringstream detail;
            detail << "resource '" << capacity.resource(r).name
                   << "' allocated " << sums[r] << " of " << cap;
            check.binding = detail.str();
        }
        if (slack < -tol.capacity)
            check.satisfied = false;
    }
    return check;
}

FairnessReport
checkFairness(const AgentList &agents, const SystemCapacity &capacity,
              const Allocation &allocation, const FairnessTolerance &tol)
{
    FairnessReport report;
    report.sharingIncentives =
        checkSharingIncentives(agents, capacity, allocation, tol);
    report.envyFreeness = checkEnvyFreeness(agents, allocation, tol);
    report.paretoEfficiency =
        checkParetoEfficiency(agents, capacity, allocation, tol);
    report.capacity = checkCapacity(capacity, allocation, tol);
    return report;
}

} // namespace ref::core
