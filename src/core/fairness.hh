/**
 * @file
 * Game-theoretic fairness checks: sharing incentives (SI),
 * envy-freeness (EF), and Pareto efficiency (PE), per paper
 * Sections 3.1-3.3 and the feasibility conditions of Eq. 11.
 */

#ifndef REF_CORE_FAIRNESS_HH
#define REF_CORE_FAIRNESS_HH

#include <string>

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/** Outcome of one property check. */
struct PropertyCheck
{
    bool satisfied = false;
    /**
     * Worst slack over all constraints of the property, measured in
     * log-utility units: positive means the tightest constraint
     * holds with room to spare; negative measures the violation.
     */
    double worstSlack = 0;
    /** Human-readable description of the tightest constraint. */
    std::string binding;
};

/** Results of all fairness checks for one allocation. */
struct FairnessReport
{
    PropertyCheck sharingIncentives;
    PropertyCheck envyFreeness;
    PropertyCheck paretoEfficiency;
    PropertyCheck capacity;

    /** The game-theoretic definition of fair: EF and PE [37]. */
    bool fair() const
    {
        return envyFreeness.satisfied && paretoEfficiency.satisfied;
    }

    /** All of SI, EF, PE and capacity hold. */
    bool allHold() const
    {
        return sharingIncentives.satisfied && fair() &&
               capacity.satisfied;
    }
};

/** Tolerances for the fairness checks. */
struct FairnessTolerance
{
    /** Slack allowed on SI/EF comparisons, in log-utility units. */
    double utility = 1e-6;
    /** Relative mismatch allowed between agents' MRS values for PE. */
    double mrs = 1e-6;
    /** Relative capacity slack. */
    double capacity = 1e-9;
};

/**
 * Check SI for every agent (Eq. 3): each agent weakly prefers its
 * bundle to the equal split C/N.
 */
PropertyCheck checkSharingIncentives(
    const AgentList &agents, const SystemCapacity &capacity,
    const Allocation &allocation, const FairnessTolerance &tol = {});

/**
 * Check EF for every ordered pair (Section 3.2): agent i weakly
 * prefers its own bundle to agent j's.
 */
PropertyCheck checkEnvyFreeness(
    const AgentList &agents, const Allocation &allocation,
    const FairnessTolerance &tol = {});

/**
 * Check PE (Section 3.3). For interior allocations under
 * Cobb-Douglas, PE holds iff (a) every resource is fully allocated
 * and (b) all agents' marginal rates of substitution agree for every
 * resource pair (the contract-curve tangency condition, Eq. 10).
 * Allocations that zero out some agent-resource amount are PE only
 * in degenerate corners; we report them as not PE, matching the
 * paper's observation that such corners are never selected.
 */
PropertyCheck checkParetoEfficiency(
    const AgentList &agents, const SystemCapacity &capacity,
    const Allocation &allocation, const FairnessTolerance &tol = {});

/** Check per-resource capacity: sum_i x_ir <= C_r. */
PropertyCheck checkCapacity(
    const SystemCapacity &capacity, const Allocation &allocation,
    const FairnessTolerance &tol = {});

/** Run all four checks. */
FairnessReport checkFairness(
    const AgentList &agents, const SystemCapacity &capacity,
    const Allocation &allocation, const FairnessTolerance &tol = {});

} // namespace ref::core

#endif // REF_CORE_FAIRNESS_HH
