/**
 * @file
 * Competitive Equilibrium from Equal Incomes (CEEI), paper
 * Section 4.2.
 *
 * In CEEI every agent receives an equal budget, prices clear the
 * market, and agents buy their utility-maximizing bundles. For
 * re-scaled (homogeneous) Cobb-Douglas utilities the CEEI outcome
 * coincides with the Nash bargaining solution and hence with the
 * proportional elasticity allocation — the equivalence behind the
 * paper's SI/EF/PE proof. We provide both the closed form and a
 * tatonnement (iterative price adjustment) solver; their agreement
 * is checked by tests.
 */

#ifndef REF_CORE_CEEI_HH
#define REF_CORE_CEEI_HH

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/** Market equilibrium: prices and the allocation they induce. */
struct CeeiSolution
{
    /**
     * Per-resource prices, normalized so that the total market value
     * sum_r p_r C_r equals 1 (the sum of all agents' budgets).
     */
    Vector prices;
    Allocation allocation;
    int iterations = 0;
    bool converged = false;
};

/** Options for the tatonnement price-adjustment loop. */
struct TatonnementOptions
{
    double stepSize = 0.5;        //!< Price update gain.
    double tolerance = 1e-10;     //!< Relative excess demand to stop.
    int maxIterations = 10000;
};

/** CEEI market for agents with Cobb-Douglas utilities. */
class CeeiMarket
{
  public:
    /**
     * @param agents Utilities are re-scaled internally (Eq. 12), as
     *        CEEI equivalence requires homogeneous utilities.
     */
    CeeiMarket(AgentList agents, SystemCapacity capacity);

    /**
     * Closed form: with equal budgets 1/N, a Cobb-Douglas agent
     * spends fraction a^_ir of its budget on resource r, so market
     * clearing gives p_r = sum_i a^_ir / (N C_r).
     */
    CeeiSolution solveClosedForm() const;

    /**
     * Walrasian tatonnement: adjust prices proportionally to excess
     * demand until the market clears. Slower but makes no use of the
     * closed form; used to validate it.
     */
    CeeiSolution solveTatonnement(
        const TatonnementOptions &options = {}) const;

    /** Demand of agent i at prices p with budget b. */
    Vector demand(std::size_t agent, const Vector &prices,
                  double budget) const;

  private:
    AgentList agents_;
    SystemCapacity capacity_;
};

} // namespace ref::core

#endif // REF_CORE_CEEI_HH
