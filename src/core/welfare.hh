/**
 * @file
 * Welfare metrics (paper Section 4.5 and Eq. 17).
 *
 * Weighted utility U_i(x_i) = u_i(x_i) / u_i(C) normalizes each
 * agent's utility by what it would achieve owning the whole machine;
 * it is the utility-space analogue of weighted progress / slowdown
 * used in prior architecture work.
 */

#ifndef REF_CORE_WELFARE_HH
#define REF_CORE_WELFARE_HH

#include "core/agent.hh"
#include "core/allocation.hh"

namespace ref::core {

/** U_i(x_i) = u_i(x_i) / u_i(C) for one agent. */
double weightedUtility(const Agent &agent, const Vector &bundle,
                       const SystemCapacity &capacity);

/** All agents' weighted utilities under an allocation. */
std::vector<double> weightedUtilities(const AgentList &agents,
                                      const Allocation &allocation,
                                      const SystemCapacity &capacity);

/**
 * Weighted system throughput (Eq. 17): sum_i U_i(x_i), the metric
 * of Figures 13 and 14.
 */
double weightedSystemThroughput(const AgentList &agents,
                                const Allocation &allocation,
                                const SystemCapacity &capacity);

/** Nash social welfare prod_i U_i(x_i) (Section 4.5). */
double nashWelfare(const AgentList &agents, const Allocation &allocation,
                   const SystemCapacity &capacity);

/** Egalitarian welfare min_i U_i(x_i). */
double egalitarianWelfare(const AgentList &agents,
                          const Allocation &allocation,
                          const SystemCapacity &capacity);

/**
 * The unfairness index of prior work [13, 28]:
 * max_i U_i / min_j U_j. Equal-slowdown mechanisms drive this
 * toward 1.
 */
double unfairnessIndex(const AgentList &agents,
                       const Allocation &allocation,
                       const SystemCapacity &capacity);

} // namespace ref::core

#endif // REF_CORE_WELFARE_HH
