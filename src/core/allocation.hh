/**
 * @file
 * Allocations of R resources to N agents.
 */

#ifndef REF_CORE_ALLOCATION_HH
#define REF_CORE_ALLOCATION_HH

#include <cstddef>

#include "core/resource.hh"
#include "linalg/matrix.hh"

namespace ref::core {

/**
 * An N x R allocation matrix: row i is agent i's bundle
 * x_i = (x_i1, ..., x_iR).
 */
class Allocation
{
  public:
    /** Empty placeholder allocation (no agents, no resources). */
    Allocation() = default;

    /** Zero allocation for n agents over r resources. */
    Allocation(std::size_t agents, std::size_t resources);

    /** The equal division (C_1/n, ..., C_R/n) for every agent. */
    static Allocation equalSplit(std::size_t agents,
                                 const SystemCapacity &capacity);

    std::size_t agents() const { return amounts_.rows(); }
    std::size_t resources() const { return amounts_.cols(); }

    /** Mutable amount of resource r held by agent i. */
    double &at(std::size_t agent, std::size_t resource);

    /** Amount of resource r held by agent i. */
    double at(std::size_t agent, std::size_t resource) const;

    /** Agent i's bundle x_i. */
    Vector agentShare(std::size_t agent) const;

    /** Overwrite agent i's bundle. */
    void setAgentShare(std::size_t agent, const Vector &share);

    /** Per-resource totals sum_i x_ir. */
    Vector totals() const;

    /**
     * True when every amount is non-negative and no resource is
     * over-allocated: sum_i x_ir <= C_r (1 + tol).
     */
    bool feasible(const SystemCapacity &capacity,
                  double tolerance = 1e-9) const;

    /**
     * True when additionally every resource is fully allocated:
     * sum_i x_ir == C_r within tolerance. Non-wasteful allocations
     * are a prerequisite for Pareto efficiency under Cobb-Douglas.
     */
    bool exhaustive(const SystemCapacity &capacity,
                    double tolerance = 1e-9) const;

    /** Agent i's fraction of each resource's total capacity. */
    Vector fractions(std::size_t agent,
                     const SystemCapacity &capacity) const;

  private:
    linalg::Matrix amounts_;
};

} // namespace ref::core

#endif // REF_CORE_ALLOCATION_HH
