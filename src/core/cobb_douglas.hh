/**
 * @file
 * Cobb-Douglas utility functions (paper Eq. 1).
 *
 * u(x) = a0 * prod_r x_r^{a_r}. The exponents a_r are the resource
 * elasticities: they capture diminishing marginal returns and
 * substitution effects that linear Leontief preferences cannot.
 */

#ifndef REF_CORE_COBB_DOUGLAS_HH
#define REF_CORE_COBB_DOUGLAS_HH

#include <vector>

#include "linalg/matrix.hh"

namespace ref::core {

using linalg::Vector;

/** A Cobb-Douglas utility over R resources. */
class CobbDouglasUtility
{
  public:
    /**
     * @param scale Multiplicative constant a0 > 0.
     * @param elasticities Exponents a_r; each must be positive (an
     *        agent with a zero elasticity does not demand the
     *        resource at all and should model it explicitly).
     */
    CobbDouglasUtility(double scale, Vector elasticities);

    /** Utility with a0 = 1. */
    explicit CobbDouglasUtility(Vector elasticities);

    /** Number of resources R. */
    std::size_t resources() const { return elasticities_.size(); }

    double scale() const { return scale_; }

    /** Elasticity a_r. */
    double elasticity(std::size_t r) const;

    const Vector &elasticities() const { return elasticities_; }

    /** Sum of all elasticities (1 exactly when rescaled). */
    double elasticitySum() const;

    /**
     * Evaluate u(x). Zero if any x_r is zero ("the user requires
     * both resources for progress"). @pre x_r >= 0 for all r.
     */
    double value(const Vector &allocation) const;

    /**
     * Evaluate log u(x); -infinity when any x_r is zero. Preferred
     * for comparisons since it avoids overflow/underflow.
     */
    double logValue(const Vector &allocation) const;

    /**
     * Marginal rate of substitution between resources r and s at x
     * (paper Eq. 9): MRS_{rs} = (a_r / a_s) * (x_s / x_r), the rate
     * at which the agent trades resource s for resource r.
     * @pre x_r > 0.
     */
    double marginalRateOfSubstitution(std::size_t r, std::size_t s,
                                      const Vector &allocation) const;

    /**
     * Re-scaled utility (paper Eq. 12): elasticities normalized to
     * sum to one and a0 set to 1, making the utility homogeneous of
     * degree one — the property behind the Nash-bargaining and CEEI
     * equivalences.
     */
    CobbDouglasUtility rescaled() const;

    /** True when the elasticities already sum to one (within tol). */
    bool isRescaled(double tolerance = 1e-9) const;

    /** @name Preference relations (paper Section 3). */
    ///@{
    /** x is strictly preferred to y. */
    bool strictlyPrefers(const Vector &x, const Vector &y) const;
    /** Indifferent between x and y (within tolerance). */
    bool indifferent(const Vector &x, const Vector &y,
                     double tolerance = 1e-9) const;
    /** x is weakly preferred to y (within tolerance). */
    bool weaklyPrefers(const Vector &x, const Vector &y,
                       double tolerance = 1e-9) const;
    ///@}

  private:
    double scale_;
    Vector elasticities_;
};

} // namespace ref::core

#endif // REF_CORE_COBB_DOUGLAS_HH
