/**
 * @file
 * Shared building blocks for the log-space (geometric-programming)
 * mechanism formulations: variable layout and the constraint
 * functions used by the welfare and utilitarian mechanisms.
 *
 * Internal to ref::core; the public mechanism interfaces live in
 * welfare_mechanisms.hh and utilitarian.hh.
 */

#ifndef REF_CORE_GP_PROGRAM_HH
#define REF_CORE_GP_PROGRAM_HH

#include <memory>

#include "core/agent.hh"
#include "core/resource.hh"
#include "solver/function.hh"
#include "solver/program.hh"

namespace ref::core::gp {

/**
 * Variable layout: y[i * R + r] = log x_ir; max-min programs append
 * one epigraph variable s at index N * R.
 */
struct ProgramShape
{
    std::size_t agents;
    std::size_t resources;
    bool hasEpigraph;

    std::size_t index(std::size_t i, std::size_t r) const
    {
        return i * resources + r;
    }

    std::size_t variables() const
    {
        return agents * resources + (hasEpigraph ? 1 : 0);
    }
};

/** log U_i(y) = sum_r a_ir (y_ir - log C_r). */
double logWeightedUtility(const ProgramShape &shape,
                          const AgentList &agents,
                          const SystemCapacity &capacity,
                          const solver::Vector &y, std::size_t i);

/** Capacity for resource r: logsumexp_i y_ir <= log C_r. */
std::shared_ptr<const solver::LambdaFunction> makeCapacityConstraint(
    const ProgramShape &shape, const SystemCapacity &capacity,
    std::size_t r);

/** SI for agent i: log u_i(C/N) - log u_i(x_i) <= 0. */
std::shared_ptr<const solver::LambdaFunction>
makeSharingIncentiveConstraint(const ProgramShape &shape,
                               const AgentList &agents,
                               const SystemCapacity &capacity,
                               std::size_t i);

/** EF for pair (i, j): log u_i(x_j) - log u_i(x_i) <= 0. */
std::shared_ptr<const solver::LambdaFunction> makeEnvyFreeConstraint(
    const ProgramShape &shape, const AgentList &agents, std::size_t i,
    std::size_t j);

/** PE tangency (Eq. 10) between agent i and agent 0, resources
 *  (r, 0): linear equality in y. */
std::shared_ptr<const solver::LambdaFunction> makeParetoConstraint(
    const ProgramShape &shape, const AgentList &agents, std::size_t i,
    std::size_t r);

/** Append SI + EF + PE constraints for all agents to a program. */
void appendFairnessConstraints(const ProgramShape &shape,
                               const AgentList &agents,
                               const SystemCapacity &capacity,
                               solver::ConstrainedProgram &program);

/** Start point: every agent at 90% of the equal split (log space). */
solver::Vector equalSplitStart(const ProgramShape &shape,
                               const SystemCapacity &capacity);

} // namespace ref::core::gp

#endif // REF_CORE_GP_PROGRAM_HH
