#include "gp_program.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ref::core::gp {

using solver::LambdaFunction;
using solver::Vector;

double
logWeightedUtility(const ProgramShape &shape, const AgentList &agents,
                   const SystemCapacity &capacity, const Vector &y,
                   std::size_t i)
{
    const auto &alphas = agents[i].utility().elasticities();
    double total = 0;
    for (std::size_t r = 0; r < shape.resources; ++r) {
        total += alphas[r] *
                 (y[shape.index(i, r)] - std::log(capacity.capacity(r)));
    }
    return total;
}

std::shared_ptr<const LambdaFunction>
makeCapacityConstraint(const ProgramShape &shape,
                       const SystemCapacity &capacity, std::size_t r)
{
    const double log_cap = std::log(capacity.capacity(r));
    auto value = [shape, r, log_cap](const Vector &y) {
        double peak = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < shape.agents; ++i)
            peak = std::max(peak, y[shape.index(i, r)]);
        double total = 0;
        for (std::size_t i = 0; i < shape.agents; ++i)
            total += std::exp(y[shape.index(i, r)] - peak);
        return peak + std::log(total) - log_cap;
    };
    auto gradient = [shape, r](const Vector &y) {
        double peak = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < shape.agents; ++i)
            peak = std::max(peak, y[shape.index(i, r)]);
        double total = 0;
        for (std::size_t i = 0; i < shape.agents; ++i)
            total += std::exp(y[shape.index(i, r)] - peak);
        Vector grad(y.size(), 0.0);
        for (std::size_t i = 0; i < shape.agents; ++i) {
            grad[shape.index(i, r)] =
                std::exp(y[shape.index(i, r)] - peak) / total;
        }
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

std::shared_ptr<const LambdaFunction>
makeSharingIncentiveConstraint(const ProgramShape &shape,
                               const AgentList &agents,
                               const SystemCapacity &capacity,
                               std::size_t i)
{
    const Vector alphas = agents[i].utility().elasticities();
    const double n = static_cast<double>(shape.agents);
    double log_equal_split_utility = 0;
    for (std::size_t r = 0; r < shape.resources; ++r) {
        log_equal_split_utility +=
            alphas[r] * std::log(capacity.capacity(r) / n);
    }
    auto value = [shape, alphas, i,
                  log_equal_split_utility](const Vector &y) {
        double own = 0;
        for (std::size_t r = 0; r < shape.resources; ++r)
            own += alphas[r] * y[shape.index(i, r)];
        return log_equal_split_utility - own;
    };
    auto gradient = [shape, alphas, i](const Vector &y) {
        Vector grad(y.size(), 0.0);
        for (std::size_t r = 0; r < shape.resources; ++r)
            grad[shape.index(i, r)] = -alphas[r];
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

std::shared_ptr<const LambdaFunction>
makeEnvyFreeConstraint(const ProgramShape &shape,
                       const AgentList &agents, std::size_t i,
                       std::size_t j)
{
    const Vector alphas = agents[i].utility().elasticities();
    auto value = [shape, alphas, i, j](const Vector &y) {
        double diff = 0;
        for (std::size_t r = 0; r < shape.resources; ++r) {
            diff += alphas[r] *
                    (y[shape.index(j, r)] - y[shape.index(i, r)]);
        }
        return diff;
    };
    auto gradient = [shape, alphas, i, j](const Vector &y) {
        Vector grad(y.size(), 0.0);
        for (std::size_t r = 0; r < shape.resources; ++r) {
            grad[shape.index(j, r)] += alphas[r];
            grad[shape.index(i, r)] -= alphas[r];
        }
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

std::shared_ptr<const LambdaFunction>
makeParetoConstraint(const ProgramShape &shape, const AgentList &agents,
                     std::size_t i, std::size_t r)
{
    const auto &alpha_i = agents[i].utility().elasticities();
    const auto &alpha_0 = agents[0].utility().elasticities();
    const double constant = std::log(alpha_i[r]) - std::log(alpha_i[0]) -
                            std::log(alpha_0[r]) + std::log(alpha_0[0]);
    auto value = [shape, i, r, constant](const Vector &y) {
        return constant + (y[shape.index(i, 0)] - y[shape.index(i, r)]) -
               (y[shape.index(0, 0)] - y[shape.index(0, r)]);
    };
    auto gradient = [shape, i, r](const Vector &y) {
        Vector grad(y.size(), 0.0);
        grad[shape.index(i, 0)] += 1;
        grad[shape.index(i, r)] -= 1;
        grad[shape.index(0, 0)] -= 1;
        grad[shape.index(0, r)] += 1;
        return grad;
    };
    return std::make_shared<LambdaFunction>(value, gradient);
}

void
appendFairnessConstraints(const ProgramShape &shape,
                          const AgentList &agents,
                          const SystemCapacity &capacity,
                          solver::ConstrainedProgram &program)
{
    for (std::size_t i = 0; i < shape.agents; ++i) {
        program.inequalities.push_back(
            makeSharingIncentiveConstraint(shape, agents, capacity, i));
    }
    for (std::size_t i = 0; i < shape.agents; ++i) {
        for (std::size_t j = 0; j < shape.agents; ++j) {
            if (i != j) {
                program.inequalities.push_back(
                    makeEnvyFreeConstraint(shape, agents, i, j));
            }
        }
    }
    for (std::size_t i = 1; i < shape.agents; ++i) {
        for (std::size_t r = 1; r < shape.resources; ++r) {
            program.equalities.push_back(
                makeParetoConstraint(shape, agents, i, r));
        }
    }
}

Vector
equalSplitStart(const ProgramShape &shape,
                const SystemCapacity &capacity)
{
    Vector start(shape.variables(), 0.0);
    const double n = static_cast<double>(shape.agents);
    for (std::size_t i = 0; i < shape.agents; ++i) {
        for (std::size_t r = 0; r < shape.resources; ++r) {
            start[shape.index(i, r)] =
                std::log(0.9 * capacity.capacity(r) / n);
        }
    }
    return start;
}

} // namespace ref::core::gp
