#include "fitting.hh"

#include <cmath>

#include "stats/descriptive.hh"
#include "stats/linear_model.hh"
#include "util/logging.hh"

namespace ref::core {

CobbDouglasFit
fitCobbDouglas(const PerformanceProfile &profile,
               const FitOptions &options)
{
    REF_REQUIRE(!profile.empty(), "cannot fit an empty profile");
    const std::size_t resources = profile.front().allocation.size();
    REF_REQUIRE(resources > 0, "profile points need resources");

    linalg::Matrix log_predictors(profile.size(), resources);
    std::vector<double> log_response(profile.size());
    for (std::size_t n = 0; n < profile.size(); ++n) {
        const auto &point = profile[n];
        REF_REQUIRE(point.allocation.size() == resources,
                    "profile point " << n << " has "
                        << point.allocation.size()
                        << " resources, expected " << resources);
        REF_REQUIRE(point.performance > 0,
                    "profile point " << n
                        << " has non-positive performance "
                        << point.performance);
        for (std::size_t r = 0; r < resources; ++r) {
            REF_REQUIRE(point.allocation[r] > 0,
                        "profile point " << n
                            << " has non-positive allocation for "
                               "resource " << r);
            log_predictors(n, r) = std::log(point.allocation[r]);
        }
        log_response[n] = std::log(point.performance);
    }

    const stats::LinearModel model(log_predictors, log_response, true);

    Vector elasticities = model.slopes();
    int clamped = 0;
    for (double &alpha : elasticities) {
        if (alpha < options.elasticityFloor) {
            alpha = options.elasticityFloor;
            ++clamped;
        }
    }
    if (clamped > 0) {
        REF_WARN("clamped " << clamped << " non-positive fitted "
                 "elasticities to " << options.elasticityFloor
                 << "; the profile shows no positive sensitivity to "
                    "some resource");
    }

    CobbDouglasFit fit{
        CobbDouglasUtility(std::exp(model.intercept()), elasticities),
        model.rSquared(), 0.0, clamped};

    // Linear-scale R-squared against the raw performance values.
    std::vector<double> response(profile.size());
    double rss = 0;
    for (std::size_t n = 0; n < profile.size(); ++n) {
        response[n] = profile[n].performance;
        const double predicted = fit.predict(profile[n].allocation);
        rss += (response[n] - predicted) * (response[n] - predicted);
    }
    const double tss = stats::totalSumOfSquares(response);
    fit.rSquaredLinear = tss > 0 ? 1.0 - rss / tss
                                 : (rss == 0 ? 1.0 : 0.0);
    return fit;
}

} // namespace ref::core
