/**
 * @file
 * The paper's contribution: the proportional elasticity mechanism
 * (Section 4.1).
 *
 * Procedure: re-scale each agent's elasticities to sum to one
 * (Eq. 12), then allocate each resource in proportion to the
 * re-scaled elasticities (Eq. 13):
 *
 *   x_ir = a^_ir / (sum_j a^_jr) * C_r
 *
 * The allocation is the Nash bargaining solution and the CEEI
 * outcome for the re-scaled utilities, hence provides SI, EF and PE;
 * it is also strategy-proof in the large (Section 4.3).
 */

#ifndef REF_CORE_PROPORTIONAL_ELASTICITY_HH
#define REF_CORE_PROPORTIONAL_ELASTICITY_HH

#include "core/mechanism.hh"

namespace ref::core {

/** Closed-form REF mechanism. */
class ProportionalElasticityMechanism : public AllocationMechanism
{
  public:
    std::string name() const override
    {
        return "proportional-elasticity";
    }

    Allocation allocate(const AgentList &agents,
                        const SystemCapacity &capacity) const override;

    /**
     * The re-scaled elasticity matrix (agents x resources) the
     * mechanism derives from reported utilities; exposed for
     * inspection and tests.
     */
    static linalg::Matrix rescaledElasticities(const AgentList &agents);
};

} // namespace ref::core

#endif // REF_CORE_PROPORTIONAL_ELASTICITY_HH
