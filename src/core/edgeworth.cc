#include "edgeworth.hh"

#include <cmath>

#include "solver/scalar.hh"
#include "util/logging.hh"

namespace ref::core {

namespace {

/** Relative margin keeping bisection brackets off the box edges. */
constexpr double kEdge = 1e-12;

} // namespace

EdgeworthBox::EdgeworthBox(Agent user1, Agent user2,
                           SystemCapacity capacity)
    : user1_(std::move(user1)), user2_(std::move(user2)),
      capacity_(std::move(capacity))
{
    REF_REQUIRE(capacity_.count() == 2,
                "Edgeworth box covers exactly two resources, got "
                    << capacity_.count());
    REF_REQUIRE(user1_.utility().resources() == 2 &&
                    user2_.utility().resources() == 2,
                "both users must have two-resource utilities");
}

Vector
EdgeworthBox::bundleOf(int user, double x1, double y1) const
{
    REF_REQUIRE(user == 1 || user == 2, "user must be 1 or 2");
    if (user == 1)
        return {x1, y1};
    return {width() - x1, height() - y1};
}

Allocation
EdgeworthBox::toAllocation(double x1, double y1) const
{
    REF_REQUIRE(x1 >= 0 && x1 <= width() && y1 >= 0 && y1 <= height(),
                "point (" << x1 << "," << y1 << ") outside the box");
    Allocation allocation(2, 2);
    allocation.setAgentShare(0, bundleOf(1, x1, y1));
    allocation.setAgentShare(1, bundleOf(2, x1, y1));
    return allocation;
}

double
EdgeworthBox::contractCurve(double x1) const
{
    REF_REQUIRE(x1 > 0 && x1 < width(),
                "contract curve needs 0 < x1 < width");
    const auto &u1 = user1_.utility();
    const auto &u2 = user2_.utility();
    const double k1 = u1.elasticity(0) / u1.elasticity(1);
    const double k2 = u2.elasticity(0) / u2.elasticity(1);
    // Tangency (Eq. 10): k1 y1 / x1 = k2 (Cy - y1) / (Cx - x1).
    return k2 * height() * x1 / (k1 * (width() - x1) + k2 * x1);
}

std::optional<double>
EdgeworthBox::envyBoundary(int user, double x1) const
{
    REF_REQUIRE(user == 1 || user == 2, "user must be 1 or 2");
    REF_REQUIRE(x1 > 0 && x1 < width(),
                "envy boundary needs 0 < x1 < width");

    const auto &utility =
        (user == 1 ? user1_ : user2_).utility();
    // Positive when the user weakly prefers its own bundle.
    const auto slack = [&](double y1) {
        return utility.logValue(bundleOf(user, x1, y1)) -
               utility.logValue(bundleOf(user == 1 ? 2 : 1, x1, y1));
    };

    const double lo = kEdge * height();
    const double hi = height() - kEdge * height();
    const double slack_lo = slack(lo);
    const double slack_hi = slack(hi);
    if (slack_lo * slack_hi > 0)
        return std::nullopt;  // Indifference never crossed in the box.
    const auto root = solver::bisectRoot(slack, lo, hi,
                                         1e-12 * height());
    return root.x;
}

std::optional<double>
EdgeworthBox::sharingIncentiveBoundary(int user, double x1) const
{
    REF_REQUIRE(user == 1 || user == 2, "user must be 1 or 2");
    REF_REQUIRE(x1 > 0 && x1 < width(),
                "SI boundary needs 0 < x1 < width");

    const auto &utility = (user == 1 ? user1_ : user2_).utility();
    const Vector equal_split = capacity_.equalShare(2);
    const double target = utility.logValue(equal_split);

    // Solve a_x log(own_x) + a_y log(own_y) + log a0 = target in the
    // user's own coordinates, then map back to box coordinates.
    const double own_x = user == 1 ? x1 : width() - x1;
    const double log_own_y =
        (target - std::log(utility.scale()) -
         utility.elasticity(0) * std::log(own_x)) /
        utility.elasticity(1);
    const double own_y = std::exp(log_own_y);
    if (own_y <= 0 || own_y >= height())
        return std::nullopt;
    return user == 1 ? own_y : height() - own_y;
}

double
EdgeworthBox::indifferenceCurve(int user, const Vector &through,
                                double x) const
{
    REF_REQUIRE(user == 1 || user == 2, "user must be 1 or 2");
    REF_REQUIRE(x > 0, "indifference curve needs x > 0");
    const auto &utility = (user == 1 ? user1_ : user2_).utility();
    const double level = utility.logValue(through);
    REF_REQUIRE(std::isfinite(level),
                "reference bundle must have positive utility");
    return std::exp((level - std::log(utility.scale()) -
                     utility.elasticity(0) * std::log(x)) /
                    utility.elasticity(1));
}

bool
EdgeworthBox::isEnvyFree(double x1, double y1, double tol) const
{
    const Vector b1 = bundleOf(1, x1, y1);
    const Vector b2 = bundleOf(2, x1, y1);
    return user1_.utility().weaklyPrefers(b1, b2, tol) &&
           user2_.utility().weaklyPrefers(b2, b1, tol);
}

bool
EdgeworthBox::hasSharingIncentives(double x1, double y1,
                                   double tol) const
{
    const Vector equal_split = capacity_.equalShare(2);
    return user1_.utility().weaklyPrefers(bundleOf(1, x1, y1),
                                          equal_split, tol) &&
           user2_.utility().weaklyPrefers(bundleOf(2, x1, y1),
                                          equal_split, tol);
}

bool
EdgeworthBox::isParetoEfficient(double x1, double y1, double tol) const
{
    if (x1 <= 0 || x1 >= width() || y1 <= 0 || y1 >= height())
        return false;
    const double mrs1 = user1_.utility().marginalRateOfSubstitution(
        0, 1, bundleOf(1, x1, y1));
    const double mrs2 = user2_.utility().marginalRateOfSubstitution(
        0, 1, bundleOf(2, x1, y1));
    return std::abs(std::log(mrs1) - std::log(mrs2)) <= tol;
}

EdgeworthBox::Segment
EdgeworthBox::fairSegment(bool with_sharing_incentives) const
{
    const Vector equal_split = capacity_.equalShare(2);

    // Slacks along the contract curve; positive when the constraint
    // holds. EF1/SI1 increase with x1 (user 1 gains resources along
    // the curve); EF2/SI2 decrease.
    const auto ef1 = [&](double x1) {
        const double y1 = contractCurve(x1);
        return user1_.utility().logValue(bundleOf(1, x1, y1)) -
               user1_.utility().logValue(bundleOf(2, x1, y1));
    };
    const auto ef2 = [&](double x1) {
        const double y1 = contractCurve(x1);
        return user2_.utility().logValue(bundleOf(2, x1, y1)) -
               user2_.utility().logValue(bundleOf(1, x1, y1));
    };
    const auto si1 = [&](double x1) {
        const double y1 = contractCurve(x1);
        return user1_.utility().logValue(bundleOf(1, x1, y1)) -
               user1_.utility().logValue(equal_split);
    };
    const auto si2 = [&](double x1) {
        const double y1 = contractCurve(x1);
        return user2_.utility().logValue(bundleOf(2, x1, y1)) -
               user2_.utility().logValue(equal_split);
    };

    const double lo_edge = kEdge * width();
    const double hi_edge = width() - kEdge * width();

    // Lower endpoint: where an increasing slack turns non-negative.
    const auto lower_root = [&](const auto &slack) {
        if (slack(lo_edge) >= 0)
            return lo_edge;
        if (slack(hi_edge) < 0)
            return hi_edge;  // Never satisfied; empty segment.
        return solver::bisectRoot(slack, lo_edge, hi_edge,
                                  1e-12 * width())
            .x;
    };
    // Upper endpoint: where a decreasing slack turns negative.
    const auto upper_root = [&](const auto &slack) {
        if (slack(hi_edge) >= 0)
            return hi_edge;
        if (slack(lo_edge) < 0)
            return lo_edge;
        return solver::bisectRoot(slack, lo_edge, hi_edge,
                                  1e-12 * width())
            .x;
    };

    double lo = lower_root(ef1);
    double hi = upper_root(ef2);
    if (with_sharing_incentives) {
        lo = std::max(lo, lower_root(si1));
        hi = std::min(hi, upper_root(si2));
    }

    Segment segment;
    if (lo < hi) {
        segment.x1Low = lo;
        segment.x1High = hi;
        segment.empty = false;
    }
    return segment;
}

} // namespace ref::core
