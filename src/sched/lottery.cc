#include "lottery.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ref::sched {

LotteryScheduler::LotteryScheduler(std::vector<double> tickets,
                                   std::uint64_t seed)
    : tickets_(std::move(tickets)), rng_(seed)
{
    REF_REQUIRE(!tickets_.empty(), "lottery needs at least one holder");
    for (std::size_t h = 0; h < tickets_.size(); ++h) {
        REF_REQUIRE(tickets_[h] > 0,
                    "holder " << h << " has non-positive tickets "
                        << tickets_[h]);
    }
    wins_.assign(tickets_.size(), 0);
}

void
LotteryScheduler::rebuildCumulative()
{
    cumulative_.resize(tickets_.size());
    double total = 0;
    for (std::size_t h = 0; h < tickets_.size(); ++h) {
        total += tickets_[h];
        cumulative_[h] = total;
    }
    cumulativeStale_ = false;
}

std::size_t
LotteryScheduler::draw()
{
    if (cumulativeStale_)
        rebuildCumulative();

    const double ticket = rng_.uniform(0.0, cumulative_.back());
    const auto it = std::upper_bound(cumulative_.begin(),
                                     cumulative_.end(), ticket);
    const std::size_t winner = std::min<std::size_t>(
        static_cast<std::size_t>(it - cumulative_.begin()),
        tickets_.size() - 1);

    ++wins_[winner];
    ++totalQuanta_;
    return winner;
}

std::uint64_t
LotteryScheduler::quantaWon(std::size_t holder) const
{
    REF_REQUIRE(holder < wins_.size(), "holder out of range");
    return wins_[holder];
}

double
LotteryScheduler::shareWon(std::size_t holder) const
{
    REF_REQUIRE(holder < wins_.size(), "holder out of range");
    if (totalQuanta_ == 0)
        return 0.0;
    return static_cast<double>(wins_[holder]) /
           static_cast<double>(totalQuanta_);
}

void
LotteryScheduler::setTickets(std::size_t holder, double tickets)
{
    REF_REQUIRE(holder < tickets_.size(), "holder out of range");
    REF_REQUIRE(tickets > 0, "tickets must be positive");
    tickets_[holder] = tickets;
    cumulativeStale_ = true;
}

} // namespace ref::sched
