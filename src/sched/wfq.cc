#include "wfq.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ref::sched {

WfqScheduler::WfqScheduler(std::vector<double> weights)
    : weights_(std::move(weights))
{
    REF_REQUIRE(!weights_.empty(), "WFQ needs at least one flow");
    for (std::size_t f = 0; f < weights_.size(); ++f) {
        REF_REQUIRE(weights_[f] > 0,
                    "flow " << f << " has non-positive weight "
                        << weights_[f]);
    }
    queues_.resize(weights_.size());
    lastFinish_.assign(weights_.size(), 0.0);
    stats_.resize(weights_.size());
}

void
WfqScheduler::enqueue(std::size_t flow, std::uint64_t tag,
                      std::uint64_t service_units)
{
    REF_REQUIRE(flow < weights_.size(), "flow " << flow
                                             << " out of range");
    REF_REQUIRE(service_units > 0, "requests need positive service");

    // Start tag: max(virtual time, this flow's last finish), the
    // standard WFQ start-time rule.
    const double start = std::max(virtualTime_, lastFinish_[flow]);
    const double finish =
        start + static_cast<double>(service_units) / weights_[flow];
    lastFinish_[flow] = finish;
    queues_[flow].push_back(Request{tag, service_units, finish});
    ++queuedRequests_;
}

WfqScheduler::Grant
WfqScheduler::pop()
{
    REF_REQUIRE(!empty(), "pop from an empty scheduler");

    // Smallest virtual finish among the flows' head requests; FIFO
    // order within a flow means only heads need inspection.
    std::size_t best_flow = 0;
    bool found = false;
    for (std::size_t f = 0; f < queues_.size(); ++f) {
        if (queues_[f].empty())
            continue;
        if (!found || queues_[f].front().virtualFinish <
                          queues_[best_flow].front().virtualFinish) {
            best_flow = f;
            found = true;
        }
    }

    const Request request = queues_[best_flow].front();
    queues_[best_flow].pop_front();
    --queuedRequests_;

    // Virtual time jumps to the served request's finish tag, a
    // virtual-clock approximation that preserves the fairness
    // bounds for backlogged flows.
    virtualTime_ = std::max(virtualTime_, request.virtualFinish);

    stats_[best_flow].requestsServed += 1;
    stats_[best_flow].unitsServed += request.serviceUnits;
    totalUnitsServed_ += request.serviceUnits;
    return Grant{best_flow, request.tag, request.serviceUnits};
}

const FlowStats &
WfqScheduler::flowStats(std::size_t flow) const
{
    REF_REQUIRE(flow < stats_.size(), "flow " << flow
                                           << " out of range");
    return stats_[flow];
}

double
WfqScheduler::serviceShare(std::size_t flow) const
{
    REF_REQUIRE(flow < stats_.size(), "flow " << flow
                                           << " out of range");
    if (totalUnitsServed_ == 0)
        return 0.0;
    return static_cast<double>(stats_[flow].unitsServed) /
           static_cast<double>(totalUnitsServed_);
}

} // namespace ref::sched
