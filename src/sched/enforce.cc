#include "enforce.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "util/logging.hh"

namespace ref::sched {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** One agent's execution state during the co-scheduled run. */
struct AgentState
{
    explicit AgentState(const sim::CacheConfig &l1_config)
        : l1(l1_config)
    {}

    const sim::Trace *trace = nullptr;
    sim::TimingParams timing;
    std::size_t opIndex = 0;
    double cycles = 0;
    sim::Cache l1;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    unsigned mshrs = 1;

    /** Completion cycles of outstanding misses; kInfinity = still
     *  queued at the memory controller. */
    std::deque<double> outstanding;
    /** Global ids of the queued (unresolved) requests, oldest first. */
    std::deque<std::uint64_t> unresolvedIds;

    bool
    finished() const
    {
        return opIndex >= trace->ops.size();
    }

    /** Earliest cycle at which this agent can do useful work. */
    double
    readyTime() const
    {
        if (outstanding.size() >= mshrs)
            return outstanding.front();  // Must retire the oldest.
        return cycles;
    }
};

} // namespace

namespace {

/**
 * Memory-channel arbiter interface: WFQ when shares are enforced,
 * FIFO by arrival when the channel is unmanaged.
 */
class Arbiter
{
  public:
    virtual ~Arbiter() = default;
    virtual void enqueue(std::size_t flow, std::uint64_t tag,
                         std::uint64_t units) = 0;
    virtual bool empty() const = 0;
    virtual WfqScheduler::Grant pop() = 0;
    virtual double serviceShare(std::size_t flow) const = 0;
};

class WfqArbiter : public Arbiter
{
  public:
    explicit WfqArbiter(std::vector<double> weights)
        : wfq_(std::move(weights))
    {}

    void
    enqueue(std::size_t flow, std::uint64_t tag,
            std::uint64_t units) override
    {
        wfq_.enqueue(flow, tag, units);
    }

    bool empty() const override { return wfq_.empty(); }
    WfqScheduler::Grant pop() override { return wfq_.pop(); }

    double
    serviceShare(std::size_t flow) const override
    {
        return wfq_.serviceShare(flow);
    }

  private:
    WfqScheduler wfq_;
};

class FifoArbiter : public Arbiter
{
  public:
    explicit FifoArbiter(std::size_t flows)
        : unitsServed_(flows, 0)
    {}

    void
    enqueue(std::size_t flow, std::uint64_t tag,
            std::uint64_t units) override
    {
        queue_.push_back(WfqScheduler::Grant{flow, tag, units});
    }

    bool empty() const override { return queue_.empty(); }

    WfqScheduler::Grant
    pop() override
    {
        REF_REQUIRE(!queue_.empty(), "pop from an empty arbiter");
        const auto grant = queue_.front();
        queue_.pop_front();
        unitsServed_[grant.flow] += grant.serviceUnits;
        totalUnits_ += grant.serviceUnits;
        return grant;
    }

    double
    serviceShare(std::size_t flow) const override
    {
        REF_REQUIRE(flow < unitsServed_.size(), "flow out of range");
        if (totalUnits_ == 0)
            return 0.0;
        return static_cast<double>(unitsServed_[flow]) /
               static_cast<double>(totalUnits_);
    }

  private:
    std::deque<WfqScheduler::Grant> queue_;
    std::vector<std::uint64_t> unitsServed_;
    std::uint64_t totalUnits_ = 0;
};

/** Masks for a free-for-all cache: every way allowed for everyone. */
WayPartition
unpartitioned(std::size_t agents, unsigned associativity)
{
    WayPartition partition;
    partition.ways.assign(agents, associativity);
    partition.masks.assign(agents, 0);  // 0 = all ways in Cache.
    partition.realizedFractions.assign(agents, 1.0);
    return partition;
}

} // namespace

EnforcedCmpSystem::EnforcedCmpSystem(
    const sim::PlatformConfig &config,
    const std::vector<double> &cache_fractions,
    const std::vector<double> &bandwidth_fractions,
    EnforcementPolicy policy)
    : config_(config), bandwidthFractions_(bandwidth_fractions),
      partition_(policy.partitionCache
                     ? partitionWays(
                           cache_fractions,
                           static_cast<unsigned>(
                               config.l2.associativity))
                     : unpartitioned(
                           cache_fractions.size(),
                           static_cast<unsigned>(
                               config.l2.associativity))),
      policy_(policy)
{
    REF_REQUIRE(cache_fractions.size() == bandwidth_fractions.size(),
                "cache and bandwidth share lists differ in length");
    for (double fraction : bandwidthFractions_) {
        REF_REQUIRE(fraction > 0, "bandwidth fractions must be "
                                  "positive");
    }
}

std::vector<EnforcedAgentResult>
EnforcedCmpSystem::run(const std::vector<sim::Trace> &traces,
                       const std::vector<sim::TimingParams> &timings)
{
    const std::size_t n = bandwidthFractions_.size();
    REF_REQUIRE(traces.size() == n && timings.size() == n,
                "need one trace and one timing per agent");

    sim::Cache l2(config_.l2);
    sim::DramModel dram(config_.dram, config_.core,
                        config_.l2.blockBytes);
    std::unique_ptr<Arbiter> arbiter;
    if (policy_.wfqBandwidth) {
        arbiter = std::make_unique<WfqArbiter>(bandwidthFractions_);
    } else {
        arbiter = std::make_unique<FifoArbiter>(n);
    }
    Arbiter &wfq = *arbiter;

    std::vector<AgentState> agents;
    agents.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        agents.emplace_back(config_.l1);
        agents.back().trace = &traces[i];
        agents.back().timing = timings[i];
        agents.back().mshrs = std::max(
            1u, static_cast<unsigned>(std::lround(timings[i].mlp)));
    }

    const double issue_cpi =
        1.0 / static_cast<double>(config_.core.issueWidth);
    double bus_free_at = 0;
    std::uint64_t next_request_id = 1;
    // Request id -> owning agent / issue time (0 = writeback,
    // untracked).
    std::vector<std::size_t> request_owner(1, 0);
    std::vector<double> request_issue(1, 0.0);

    // Serve the WFQ-chosen queued request on the bus and resolve its
    // owner's outstanding completion.
    const auto serve_one = [&]() {
        const auto grant = wfq.pop();
        const double issue =
            grant.tag != 0 ? request_issue[grant.tag] : bus_free_at;
        const double bus_start = std::max(bus_free_at, issue);
        const double completion =
            bus_start + static_cast<double>(dram.accessCycles() +
                                            dram.transferCycles());
        bus_free_at = bus_start +
                      static_cast<double>(dram.transferCycles());

        if (grant.tag != 0) {
            AgentState &owner = agents[request_owner[grant.tag]];
            REF_ASSERT(!owner.unresolvedIds.empty(),
                       "grant for an agent with no queued requests");
            // Requests are FIFO per agent, so the oldest unresolved
            // id is the one granted (WFQ preserves per-flow order).
            owner.unresolvedIds.pop_front();
            for (double &slot : owner.outstanding) {
                if (std::isinf(slot)) {
                    slot = completion;
                    break;
                }
            }
        }
    };

    // Shares under full contention: snapshot when the first agent
    // completes its trace.
    std::vector<double> contended_shares(n, 0.0);
    bool shares_snapshotted = false;
    const auto snapshot_shares = [&]() {
        for (std::size_t i = 0; i < n; ++i)
            contended_shares[i] = wfq.serviceShare(i);
        shares_snapshotted = true;
    };

    while (true) {
        // Pick the next agent able to make progress.
        std::size_t best = n;
        double best_time = kInfinity;
        bool any_unfinished = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (agents[i].finished()) {
                if (!shares_snapshotted)
                    snapshot_shares();
                continue;
            }
            any_unfinished = true;
            const double ready = agents[i].readyTime();
            if (ready < best_time) {
                best_time = ready;
                best = i;
            }
        }
        if (!any_unfinished)
            break;
        if (best == n) {
            // Everyone is blocked on queued requests: the bus must
            // serve one (WFQ decides whose).
            REF_ASSERT(!wfq.empty(), "all agents blocked but memory "
                                     "queue empty");
            serve_one();
            continue;
        }

        AgentState &agent = agents[best];

        // Retire any misses that have completed by now.
        while (!agent.outstanding.empty() &&
               agent.outstanding.front() <= agent.cycles) {
            agent.outstanding.pop_front();
        }
        if (agent.outstanding.size() >= agent.mshrs) {
            const double oldest = agent.outstanding.front();
            if (std::isinf(oldest)) {
                // Oldest miss still queued: force bus progress.
                REF_ASSERT(!wfq.empty(), "blocked on an unqueued miss");
                serve_one();
                continue;
            }
            agent.cycles = std::max(agent.cycles, oldest);
            agent.outstanding.pop_front();
            continue;
        }

        // Execute one memory operation.
        const sim::MemOp &op = agent.trace->ops[agent.opIndex++];
        agent.cycles += op.gapInstructions *
                            (issue_cpi + agent.timing.nonMemCpi) +
                        issue_cpi;

        const auto l1_result = agent.l1.access(op.address, op.isWrite);
        if (l1_result.hit)
            continue;

        if (l1_result.evictedDirty)
            l2.access(l1_result.victimAddress, true,
                      partition_.masks[best]);

        ++agent.l2Accesses;
        const auto l2_result =
            l2.access(op.address, op.isWrite, partition_.masks[best]);
        if (l2_result.hit) {
            agent.cycles += config_.l2.latencyCycles /
                            std::min(agent.timing.mlp, 2.0);
            continue;
        }

        // Shared-memory miss: queue at the WFQ memory controller.
        ++agent.l2Misses;
        agent.cycles += config_.l2.latencyCycles;
        const std::uint64_t id = next_request_id++;
        request_owner.push_back(best);
        request_issue.push_back(agent.cycles);
        agent.outstanding.push_back(kInfinity);
        agent.unresolvedIds.push_back(id);
        wfq.enqueue(best, id, dram.transferCycles());

        // Dirty victims consume WFQ bandwidth but nobody waits on
        // them (tag 0 marks them untracked).
        if (l2_result.evictedDirty)
            wfq.enqueue(best, 0, dram.transferCycles());

        // Let the bus catch up with anything it could already have
        // served before this agent's local time.
        while (!wfq.empty() && bus_free_at <= agent.cycles)
            serve_one();
    }

    // Drain the queue so writeback accounting is complete.
    while (!wfq.empty())
        serve_one();
    if (!shares_snapshotted)
        snapshot_shares();

    std::vector<EnforcedAgentResult> results(n);
    for (std::size_t i = 0; i < n; ++i) {
        EnforcedAgentResult &result = results[i];
        result.instructions = agents[i].trace->instructions;
        result.cycles = agents[i].cycles;
        result.ipc = result.cycles > 0
                         ? static_cast<double>(result.instructions) /
                               result.cycles
                         : 0.0;
        result.l1 = agents[i].l1.stats();
        result.l2Accesses = agents[i].l2Accesses;
        result.l2Misses = agents[i].l2Misses;
        result.bandwidthShare = contended_shares[i];
        result.cacheShare = partition_.realizedFractions[i];
    }
    return results;
}

} // namespace ref::sched
