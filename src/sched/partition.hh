/**
 * @file
 * Cache way-partitioning: translating REF's continuous cache-share
 * fractions into integral per-agent way assignments.
 */

#ifndef REF_SCHED_PARTITION_HH
#define REF_SCHED_PARTITION_HH

#include <cstdint>
#include <vector>

namespace ref::sched {

/** Integral division of a cache's ways among agents. */
struct WayPartition
{
    /** Ways assigned to each agent; sums to the associativity. */
    std::vector<unsigned> ways;

    /** Replacement mask (bit per way) for each agent. */
    std::vector<std::uint64_t> masks;

    /** The fraction each agent actually receives. */
    std::vector<double> realizedFractions;
};

/**
 * Partition @p associativity ways according to @p fractions using
 * largest-remainder rounding, guaranteeing every agent at least one
 * way (an agent with zero ways could never cache anything).
 *
 * @pre fractions sum to ~1; associativity >= number of agents;
 *      associativity <= 64 (mask width).
 */
WayPartition partitionWays(const std::vector<double> &fractions,
                           unsigned associativity);

} // namespace ref::sched

#endif // REF_SCHED_PARTITION_HH
