#include "partition.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace ref::sched {

WayPartition
partitionWays(const std::vector<double> &fractions,
              unsigned associativity)
{
    const std::size_t agents = fractions.size();
    REF_REQUIRE(agents > 0, "no agents to partition among");
    REF_REQUIRE(associativity >= agents,
                "associativity " << associativity << " cannot give "
                    << agents << " agents a way each");
    REF_REQUIRE(associativity <= 64, "way masks are 64 bits wide");

    double total = 0;
    for (double fraction : fractions) {
        REF_REQUIRE(fraction >= 0, "negative share fraction");
        total += fraction;
    }
    REF_REQUIRE(std::abs(total - 1.0) <= 1e-6,
                "fractions sum to " << total << ", expected 1");

    // Largest-remainder rounding of the ideal (fractional) ways,
    // then a one-way floor per agent, funded by the largest holders.
    WayPartition partition;
    partition.ways.assign(agents, 0);
    unsigned assigned = 0;
    std::vector<double> remainders(agents);
    for (std::size_t i = 0; i < agents; ++i) {
        const double ideal = fractions[i] * associativity;
        partition.ways[i] = static_cast<unsigned>(std::floor(ideal));
        assigned += partition.ways[i];
        remainders[i] = ideal - partition.ways[i];
    }

    std::vector<std::size_t> order(agents);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return remainders[a] > remainders[b];
              });
    for (std::size_t k = 0; assigned < associativity; ++k) {
        partition.ways[order[k % agents]] += 1;
        ++assigned;
    }
    REF_ASSERT(assigned == associativity,
               "assigned " << assigned << " ways of " << associativity);

    // An agent with zero ways could never cache anything: promote it
    // to one way, taking from whoever currently holds the most.
    for (std::size_t i = 0; i < agents; ++i) {
        while (partition.ways[i] == 0) {
            const std::size_t richest = static_cast<std::size_t>(
                std::max_element(partition.ways.begin(),
                                 partition.ways.end()) -
                partition.ways.begin());
            REF_ASSERT(partition.ways[richest] > 1,
                       "cannot fund a one-way floor");
            partition.ways[richest] -= 1;
            partition.ways[i] += 1;
        }
    }

    // Contiguous masks, lowest ways first.
    partition.masks.assign(agents, 0);
    partition.realizedFractions.assign(agents, 0);
    unsigned next_way = 0;
    for (std::size_t i = 0; i < agents; ++i) {
        for (unsigned w = 0; w < partition.ways[i]; ++w)
            partition.masks[i] |= std::uint64_t{1} << (next_way + w);
        next_way += partition.ways[i];
        partition.realizedFractions[i] =
            static_cast<double>(partition.ways[i]) / associativity;
    }
    return partition;
}

} // namespace ref::sched
