/**
 * @file
 * Lottery scheduling (Waldspurger & Weihl [38]).
 *
 * The second enforcement option the paper names: holders receive
 * tickets in proportion to their share, and each scheduling quantum
 * goes to the holder of a uniformly drawn ticket. Probabilistically
 * proportional; tests bound the deviation.
 */

#ifndef REF_SCHED_LOTTERY_HH
#define REF_SCHED_LOTTERY_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace ref::sched {

/** A lottery scheduler over a fixed set of ticket holders. */
class LotteryScheduler
{
  public:
    /**
     * @param tickets Positive ticket count (or fractional weight)
     *        per holder.
     * @param seed Seed for the internal deterministic RNG.
     */
    LotteryScheduler(std::vector<double> tickets,
                     std::uint64_t seed = 1);

    std::size_t holders() const { return tickets_.size(); }

    /** Draw the next quantum's winner. */
    std::size_t draw();

    /** Quanta won by a holder so far. */
    std::uint64_t quantaWon(std::size_t holder) const;

    /** Fraction of all quanta won by a holder (0 before any draw). */
    double shareWon(std::size_t holder) const;

    /** Total quanta drawn. */
    std::uint64_t totalQuanta() const { return totalQuanta_; }

    /**
     * Adjust a holder's tickets (e.g. after a re-allocation round).
     * @pre tickets > 0.
     */
    void setTickets(std::size_t holder, double tickets);

  private:
    std::vector<double> tickets_;
    std::vector<double> cumulative_;  //!< Prefix sums for draws.
    std::vector<std::uint64_t> wins_;
    std::uint64_t totalQuanta_ = 0;
    Rng rng_;
    bool cumulativeStale_ = true;

    void rebuildCumulative();
};

} // namespace ref::sched

#endif // REF_SCHED_LOTTERY_HH
