/**
 * @file
 * Weighted fair queuing (Demers, Keshav, Shenker [8]).
 *
 * The paper enforces bandwidth shares with "existing approaches,
 * such as weighted fair queuing". This is a generic start-time
 * virtual-finish-time WFQ arbiter: each flow accrues virtual finish
 * times inversely proportional to its weight, and the arbiter always
 * serves the eligible request with the smallest finish tag. Used by
 * the enforcement experiments to share the DRAM channel according to
 * REF's bandwidth fractions.
 */

#ifndef REF_SCHED_WFQ_HH
#define REF_SCHED_WFQ_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace ref::sched {

/** Per-flow service statistics. */
struct FlowStats
{
    std::uint64_t requestsServed = 0;
    std::uint64_t unitsServed = 0;  //!< Total service units consumed.
};

/** A weighted-fair-queuing arbiter over a fixed set of flows. */
class WfqScheduler
{
  public:
    /**
     * @param weights One positive weight per flow; service converges
     *        to these proportions whenever flows stay backlogged.
     */
    explicit WfqScheduler(std::vector<double> weights);

    std::size_t flows() const { return weights_.size(); }

    /**
     * Enqueue a request for @p flow costing @p service_units (e.g.
     * bus cycles for one block transfer).
     * @param tag Caller-defined payload identifier returned by pop().
     */
    void enqueue(std::size_t flow, std::uint64_t tag,
                 std::uint64_t service_units);

    /** True when no request is queued. */
    bool empty() const { return queuedRequests_ == 0; }

    /** Total queued requests across flows. */
    std::size_t size() const { return queuedRequests_; }

    /** A dequeued request. */
    struct Grant
    {
        std::size_t flow = 0;
        std::uint64_t tag = 0;
        std::uint64_t serviceUnits = 0;
    };

    /**
     * Dequeue the request with the smallest virtual finish time.
     * @pre !empty().
     */
    Grant pop();

    /** Service accounting per flow. */
    const FlowStats &flowStats(std::size_t flow) const;

    /**
     * Fraction of total service units received by a flow so far;
     * 0 when nothing has been served.
     */
    double serviceShare(std::size_t flow) const;

  private:
    struct Request
    {
        std::uint64_t tag;
        std::uint64_t serviceUnits;
        double virtualFinish;
    };

    std::vector<double> weights_;
    std::vector<std::deque<Request>> queues_;
    std::vector<double> lastFinish_;   //!< Per-flow last finish tag.
    std::vector<FlowStats> stats_;
    double virtualTime_ = 0;
    std::size_t queuedRequests_ = 0;
    std::uint64_t totalUnitsServed_ = 0;
};

} // namespace ref::sched

#endif // REF_SCHED_WFQ_HH
