#include "stride.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ref::sched {

StrideScheduler::StrideScheduler(std::vector<double> tickets)
    : tickets_(std::move(tickets))
{
    REF_REQUIRE(!tickets_.empty(), "stride needs at least one holder");
    for (std::size_t h = 0; h < tickets_.size(); ++h) {
        REF_REQUIRE(tickets_[h] > 0,
                    "holder " << h << " has non-positive tickets "
                        << tickets_[h]);
    }
    // Start everyone half a stride in, the standard fix for the
    // initial tie (otherwise holder 0 wins every first-round tie).
    passes_.resize(tickets_.size());
    for (std::size_t h = 0; h < tickets_.size(); ++h)
        passes_[h] = 0.5 * kStrideScale / tickets_[h];
    grants_.assign(tickets_.size(), 0);
}

std::size_t
StrideScheduler::next()
{
    const std::size_t winner = static_cast<std::size_t>(
        std::min_element(passes_.begin(), passes_.end()) -
        passes_.begin());
    passes_[winner] += kStrideScale / tickets_[winner];
    ++grants_[winner];
    ++totalQuanta_;
    return winner;
}

std::uint64_t
StrideScheduler::quantaGranted(std::size_t holder) const
{
    REF_REQUIRE(holder < grants_.size(), "holder out of range");
    return grants_[holder];
}

double
StrideScheduler::shareGranted(std::size_t holder) const
{
    REF_REQUIRE(holder < grants_.size(), "holder out of range");
    if (totalQuanta_ == 0)
        return 0.0;
    return static_cast<double>(grants_[holder]) /
           static_cast<double>(totalQuanta_);
}

void
StrideScheduler::setTickets(std::size_t holder, double tickets)
{
    REF_REQUIRE(holder < tickets_.size(), "holder out of range");
    REF_REQUIRE(tickets > 0, "tickets must be positive");
    tickets_[holder] = tickets;
}

} // namespace ref::sched
