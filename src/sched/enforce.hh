/**
 * @file
 * Enforcement of REF shares in a co-scheduled CMP (paper Section
 * 4.4: "we can enforce those shares with existing approaches").
 *
 * Several agents run together: each keeps a private L1 and core
 * front end, while the shared L2 is way-partitioned according to the
 * cache shares and the shared DRAM channel is arbitrated by weighted
 * fair queuing according to the bandwidth shares. Memory-level
 * parallelism is modeled structurally: an agent blocks only when its
 * MSHRs fill, so overlap emerges from outstanding misses rather than
 * from an analytic divisor.
 */

#ifndef REF_SCHED_ENFORCE_HH
#define REF_SCHED_ENFORCE_HH

#include <vector>

#include "sched/partition.hh"
#include "sched/wfq.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/system.hh"
#include "sim/trace.hh"

namespace ref::sched {

/** Per-agent outcome of a co-scheduled run. */
struct EnforcedAgentResult
{
    std::uint64_t instructions = 0;
    double cycles = 0;
    double ipc = 0;
    sim::CacheStats l1;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /**
     * Fraction of DRAM service units this agent received while ALL
     * agents were still running (the fully contended window). Over a
     * complete run every queued request is eventually served, so the
     * whole-run share reflects demand, not the arbiter; the
     * contended-window share is what WFQ controls.
     */
    double bandwidthShare = 0;
    /** Fraction of L2 ways this agent received. */
    double cacheShare = 0;
};

/** How the shared resources are managed. */
struct EnforcementPolicy
{
    /** Way-partition the shared L2; false = free-for-all LRU. */
    bool partitionCache = true;
    /**
     * Arbitrate the memory channel with WFQ at the bandwidth
     * fractions; false = FIFO by arrival order (unmanaged), letting
     * the most memory-intensive agent crowd out the rest.
     */
    bool wfqBandwidth = true;
};

/** Co-scheduled system with (optionally) enforced shares. */
class EnforcedCmpSystem
{
  public:
    /**
     * @param config Shared platform (L2 size/assoc, DRAM, core).
     * @param cache_fractions Per-agent L2 share; sums to 1.
     * @param bandwidth_fractions Per-agent DRAM share; sums to 1.
     * @param policy Which enforcement levers are active; with both
     *        off the fractions are ignored and the run models an
     *        unmanaged CMP.
     */
    EnforcedCmpSystem(const sim::PlatformConfig &config,
                      const std::vector<double> &cache_fractions,
                      const std::vector<double> &bandwidth_fractions,
                      EnforcementPolicy policy = {});

    /**
     * Run all agents to completion of their traces.
     * @pre one trace and one timing per agent.
     */
    std::vector<EnforcedAgentResult> run(
        const std::vector<sim::Trace> &traces,
        const std::vector<sim::TimingParams> &timings);

    /** The way partition derived from the cache fractions. */
    const WayPartition &partition() const { return partition_; }

  private:
    sim::PlatformConfig config_;
    std::vector<double> bandwidthFractions_;
    WayPartition partition_;
    EnforcementPolicy policy_;
};

} // namespace ref::sched

#endif // REF_SCHED_ENFORCE_HH
