/**
 * @file
 * Stride scheduling (Waldspurger's deterministic successor to
 * lottery scheduling [38]).
 *
 * Each holder advances a virtual "pass" by a stride inversely
 * proportional to its tickets; every quantum goes to the holder with
 * the smallest pass. Proportional like the lottery but with O(1)
 * deviation instead of probabilistic convergence — the natural
 * choice when REF's shares must hold over short windows.
 */

#ifndef REF_SCHED_STRIDE_HH
#define REF_SCHED_STRIDE_HH

#include <cstdint>
#include <vector>

namespace ref::sched {

/** A stride scheduler over a fixed set of ticket holders. */
class StrideScheduler
{
  public:
    /** @param tickets Positive ticket count per holder. */
    explicit StrideScheduler(std::vector<double> tickets);

    std::size_t holders() const { return tickets_.size(); }

    /** Select the next quantum's holder (smallest pass wins). */
    std::size_t next();

    /** Quanta granted to a holder so far. */
    std::uint64_t quantaGranted(std::size_t holder) const;

    /** Fraction of all quanta granted (0 before any call). */
    double shareGranted(std::size_t holder) const;

    std::uint64_t totalQuanta() const { return totalQuanta_; }

    /**
     * Adjust a holder's tickets; its stride changes from the next
     * quantum on, its accumulated pass is preserved.
     */
    void setTickets(std::size_t holder, double tickets);

  private:
    static constexpr double kStrideScale = 1 << 20;

    std::vector<double> tickets_;
    std::vector<double> passes_;
    std::vector<std::uint64_t> grants_;
    std::uint64_t totalQuanta_ = 0;
};

} // namespace ref::sched

#endif // REF_SCHED_STRIDE_HH
