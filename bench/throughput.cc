#include "throughput.hh"

#include <iostream>
#include <unordered_map>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "util/table.hh"

namespace ref::bench {

bool
printThroughputComparison(const std::vector<sim::WorkloadMix> &mixes,
                          std::size_t trace_ops,
                          double penalty_threshold)
{
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism proportional;
    const auto max_welfare_fair = core::makeMaxWelfareFair();
    const auto max_welfare_unfair = core::makeMaxWelfareUnfair();
    const auto equal_slowdown = core::makeEqualSlowdown();

    Table table({"mix", "composition", "MaxWelfare+fair",
                 "PropElasticity", "MaxWelfare (unfair)",
                 "EqualSlowdown (unfair)", "fairness penalty"});

    // Mixes overlap heavily in membership, so fit each distinct
    // benchmark exactly once: one shared profiler, one sweepMany
    // batch over the union, then assemble the per-mix agent lists
    // from the fitted utilities.
    std::vector<std::string> distinct;
    std::unordered_map<std::string, std::size_t> fitted_index;
    for (const auto &mix : mixes) {
        for (const auto &member : mix.members) {
            if (fitted_index.emplace(member, distinct.size()).second)
                distinct.push_back(member);
        }
    }
    const auto profiler = defaultProfiler(trace_ops);
    const auto fitted = fitAgents(profiler, distinct);

    bool shape_holds = true;
    for (const auto &mix : mixes) {
        core::AgentList agents;
        agents.reserve(mix.members.size());
        for (const auto &member : mix.members) {
            agents.emplace_back(
                member, fitted[fitted_index.at(member)].utility());
        }

        const auto throughput =
            [&](const core::AllocationMechanism &mechanism) {
                return core::weightedSystemThroughput(
                    agents, mechanism.allocate(agents, capacity),
                    capacity);
            };
        const double fair_welfare = throughput(max_welfare_fair);
        const double ref_mechanism = throughput(proportional);
        const double unfair_welfare = throughput(max_welfare_unfair);
        const double slowdown = throughput(equal_slowdown);

        const double penalty =
            1.0 - std::max(fair_welfare, ref_mechanism) /
                      unfair_welfare;
        table.addRow({mix.name, mix.composition,
                      formatFixed(fair_welfare, 3),
                      formatFixed(ref_mechanism, 3),
                      formatFixed(unfair_welfare, 3),
                      formatFixed(slowdown, 3),
                      formatPercent(penalty, 1)});

        // Paper-shape checks: fairness costs < ~10%, REF tracks the
        // fairness-constrained welfare optimum, and the unfair
        // optimum is an (empirical) upper bound. The bound gets a 3%
        // slack: all mechanisms maximize the Nash PRODUCT, so the
        // weighted-throughput SUM of a constrained optimum can
        // nose ahead slightly, as the paper's "empirical" hedges.
        if (penalty > penalty_threshold)
            shape_holds = false;
        if (std::abs(ref_mechanism - fair_welfare) >
            0.05 * unfair_welfare)
            shape_holds = false;
        if (unfair_welfare * 1.03 < ref_mechanism ||
            unfair_welfare * 1.03 < slowdown)
            shape_holds = false;
    }
    table.print(std::cout);
    std::cout << "\npaper-shape checks (penalty < "
              << formatPercent(penalty_threshold, 0)
              << ", REF == MaxWelfare+fair, unfair bound on top): "
              << (shape_holds ? "PASS" : "FAIL") << "\n";
    return shape_holds;
}

} // namespace ref::bench
