/**
 * @file
 * Figure 9: re-scaled elasticities (Eq. 12) for every workload, and
 * the resulting C/M classification: class M demands memory bandwidth
 * (alpha_mem > 0.5), class C demands cache capacity.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner(
        "Figure 9", "re-scaled resource elasticities and C/M classes");
    const auto profiler = bench::defaultProfiler(80000);
    // One sweepMany batch over the whole catalog instead of 28
    // sequential profileAndFit drains.
    const auto &workloads = sim::allWorkloads();
    const auto fits = bench::fitWorkloads(profiler, workloads);

    Table table({"benchmark", "alpha_mem (rescaled)",
                 "alpha_cache (rescaled)", "fitted class",
                 "paper class", "match"});
    int matches = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto &workload = workloads[i];
        const auto rescaled = fits[i].utility.rescaled();
        const char fitted_class =
            rescaled.elasticity(0) > 0.5 ? 'M' : 'C';
        matches += fitted_class == workload.expectedClass;
        table.addRow({workload.name,
                      formatFixed(rescaled.elasticity(0), 3),
                      formatFixed(rescaled.elasticity(1), 3),
                      std::string(1, fitted_class),
                      std::string(1, workload.expectedClass),
                      fitted_class == workload.expectedClass ? "yes"
                                                             : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nclassification agreement: " << matches << "/"
              << sim::allWorkloads().size() << "\n";
}

void
BM_RescaleElasticities(benchmark::State &state)
{
    const core::CobbDouglasUtility utility(0.8, {0.45, 0.3});
    for (auto _ : state) {
        auto rescaled = utility.rescaled();
        benchmark::DoNotOptimize(rescaled);
    }
}
BENCHMARK(BM_RescaleElasticities);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
