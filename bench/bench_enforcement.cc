/**
 * @file
 * Section 4.4 claim: REF's proportional shares "can be enforced with
 * existing approaches, such as weighted fair queuing or lottery
 * scheduling". Fits a C/M pair, allocates with REF, then co-runs
 * both workloads with way-partitioned cache and WFQ bandwidth,
 * reporting allocated vs measured shares. Also demonstrates lottery
 * scheduling converging to REF's shares as time-slice weights.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "sched/enforce.hh"
#include "sched/lottery.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printExperiment()
{
    bench::printBanner(
        "Enforcement (Section 4.4)",
        "allocated vs measured shares under WFQ + way partitioning");

    const std::vector<std::string> names{"histogram", "dedup"};
    const auto agents = bench::fitAgents(names, 60000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);

    std::vector<double> cache_fractions, bandwidth_fractions;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto fractions = allocation.fractions(i, capacity);
        bandwidth_fractions.push_back(fractions[0]);
        cache_fractions.push_back(fractions[1]);
    }

    sim::PlatformConfig config = sim::PlatformConfig::table1();
    config.dram.bandwidthGBps = 3.2;
    sched::EnforcedCmpSystem system(config, cache_fractions,
                                    bandwidth_fractions);

    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const auto &name : names) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(30000));
        timings.push_back(workload.timing);
    }
    const auto results = system.run(traces, timings);

    Table table({"agent", "allocated bandwidth", "measured bandwidth",
                 "allocated cache", "realized cache (ways)", "IPC"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        table.addRow({names[i],
                      formatPercent(bandwidth_fractions[i], 1),
                      formatPercent(results[i].bandwidthShare, 1),
                      formatPercent(cache_fractions[i], 1),
                      formatPercent(results[i].cacheShare, 1),
                      formatFixed(results[i].ipc, 4)});
    }
    table.print(std::cout);
    std::cout << "(measured bandwidth is the WFQ service share over "
                 "the fully contended window;\n the cache-bound agent "
                 "may not saturate its own bandwidth share)\n\n";

    // Lottery scheduling enforcing the same bandwidth split as
    // time-slice weights.
    sched::LotteryScheduler lottery(bandwidth_fractions, 99);
    for (int i = 0; i < 200000; ++i)
        lottery.draw();
    Table lottery_table(
        {"agent", "tickets (share)", "quanta won (share)"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        lottery_table.addRow(
            {names[i], formatPercent(bandwidth_fractions[i], 1),
             formatPercent(lottery.shareWon(i), 1)});
    }
    std::cout << "lottery scheduling, 200k quanta:\n";
    lottery_table.print(std::cout);
}

void
BM_CoScheduledRun(benchmark::State &state)
{
    sim::PlatformConfig config = sim::PlatformConfig::table1();
    config.dram.bandwidthGBps = 3.2;
    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const char *name : {"histogram", "dedup"}) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(10000));
        timings.push_back(workload.timing);
    }
    for (auto _ : state) {
        sched::EnforcedCmpSystem system(config, {0.5, 0.5},
                                        {0.5, 0.5});
        auto results = system.run(traces, timings);
        benchmark::DoNotOptimize(results);
    }
}
BENCHMARK(BM_CoScheduledRun)->Unit(benchmark::kMillisecond);

void
BM_WfqEnqueuePop(benchmark::State &state)
{
    sched::WfqScheduler wfq({0.7, 0.3});
    std::uint64_t tag = 1;
    for (auto _ : state) {
        wfq.enqueue(tag % 2, tag, 15);
        auto grant = wfq.pop();
        benchmark::DoNotOptimize(grant);
        ++tag;
    }
}
BENCHMARK(BM_WfqEnqueuePop);

} // namespace

int
main(int argc, char **argv)
{
    printExperiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
