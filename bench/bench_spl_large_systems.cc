/**
 * @file
 * Section 4.3 / Appendix A: strategy-proofness in the large. A
 * strategic agent best-responds to everyone else's truthful reports
 * (Eq. 15); we print the utility gain from lying and the deviation
 * of the optimal report from the truth as the population grows —
 * including the paper's 64-task example with uniform elasticities.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/strategic.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ref;

core::AgentList
uniformAgents(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    core::AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        // Paper: "each of the 64 tasks' elasticities are uniformly
        // random from (0,1)".
        agents.emplace_back(
            "task-" + std::to_string(i),
            core::CobbDouglasUtility({rng.uniform(0.01, 1.0),
                                      rng.uniform(0.01, 1.0)}));
    }
    return agents;
}

void
printFigure()
{
    bench::printBanner(
        "Section 4.3 / Appendix A",
        "strategy-proofness in the large: gain from lying vs N");
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();

    Table table({"agents N", "best-response gain (u'/u)",
                 "report deviation |a' - a|", "sum_j alpha_j,mem"});
    for (std::size_t n : {2, 4, 8, 16, 32, 64, 128}) {
        // Average over a few strategic agents and seeds.
        double worst_gain = 1.0;
        double worst_deviation = 0.0;
        double elasticity_sum = 0.0;
        for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
            const auto agents = uniformAgents(n, seed);
            const core::StrategicAnalysis analysis(agents, capacity);
            const auto best = analysis.bestResponse(0);
            worst_gain = std::max(worst_gain, best.gainRatio);
            worst_deviation =
                std::max(worst_deviation, best.reportDeviation);
            double total = 0;
            for (const auto &agent : agents)
                total += agent.utility().rescaled().elasticity(0);
            elasticity_sum = total;
        }
        table.addRow({std::to_string(n), formatFixed(worst_gain, 6),
                      formatFixed(worst_deviation, 4),
                      formatFixed(elasticity_sum, 2)});
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: gain -> 1 and deviation -> 0 as "
                 "1 << sum_j alpha_jr (SPL); the 64-task system is "
                 "already effectively strategy-proof.\n";
}

void
BM_BestResponseTwoResources(benchmark::State &state)
{
    const auto agents =
        uniformAgents(static_cast<std::size_t>(state.range(0)), 7);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::StrategicAnalysis analysis(agents, capacity);
    for (auto _ : state) {
        auto best = analysis.bestResponse(0);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_BestResponseTwoResources)->Arg(4)->Arg(64);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
