/**
 * @file
 * Ablation: robustness of the fitted elasticities to the memory
 * substrate.
 *
 * The mechanism's premise is that elasticity is a property of the
 * WORKLOAD, stable enough that shares derived from profiles remain
 * meaningful when the microarchitecture shifts. We re-profile
 * representative workloads under three substrate variants — open-page
 * DRAM, a next-line prefetcher, and a dual-channel memory system —
 * and check that the C/M classification survives.
 */

#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

double
rescaledAlphaMem(const sim::PlatformConfig &base,
                 const sim::WorkloadSpec &workload)
{
    const sim::Profiler profiler(base, 60000);
    const auto fit = profiler.profileAndFit(workload);
    return fit.utility.rescaled().elasticity(0);
}

void
printAblation()
{
    bench::printBanner(
        "Ablation",
        "elasticity robustness across memory substrates");

    sim::PlatformConfig baseline = sim::PlatformConfig::table1();

    sim::PlatformConfig open_page = baseline;
    open_page.dram.pagePolicy = sim::PagePolicy::Open;

    sim::PlatformConfig prefetch = baseline;
    prefetch.core.nextLinePrefetch = true;

    sim::PlatformConfig dual_channel = baseline;
    dual_channel.dram.channels = 2;

    // A workload is "borderline" when its baseline elasticity sits
    // within the observed substrate sensitivity of the 0.5 class
    // threshold (dual-channel timing alone shifts a_mem by up to
    // ~0.10 for every workload); such workloads can legitimately
    // flip class when the substrate changes.
    constexpr double kBorderline = 0.12;

    Table table({"workload", "paper class", "baseline a_mem",
                 "open-page a_mem", "prefetch a_mem",
                 "2-channel a_mem", "verdict"});
    int stable = 0, borderline = 0, flipped = 0;
    for (const char *name :
         {"histogram", "freqmine", "barnes", "streamcluster",
          "canneal", "dedup", "facesim", "string_match"}) {
        const auto &workload = sim::workloadByName(name);
        const double base = rescaledAlphaMem(baseline, workload);
        const double open = rescaledAlphaMem(open_page, workload);
        const double pf = rescaledAlphaMem(prefetch, workload);
        const double dual = rescaledAlphaMem(dual_channel, workload);
        const bool is_m = workload.expectedClass == 'M';
        const bool all_match =
            ((base > 0.5) == is_m) && ((open > 0.5) == is_m) &&
            ((pf > 0.5) == is_m) && ((dual > 0.5) == is_m);
        std::string verdict;
        if (all_match) {
            verdict = "stable";
            ++stable;
        } else if (std::abs(base - 0.5) < kBorderline) {
            verdict = "borderline";
            ++borderline;
        } else {
            verdict = "FLIPPED";
            ++flipped;
        }
        table.addRow({name, std::string(1, workload.expectedClass),
                      formatFixed(base, 3), formatFixed(open, 3),
                      formatFixed(pf, 3), formatFixed(dual, 3),
                      verdict});
    }
    table.print(std::cout);
    std::cout << "\nstable: " << stable << "  borderline: "
              << borderline << "  flipped: " << flipped
              << "\nStrongly-classed workloads keep their class under "
                 "every substrate; only near-threshold workloads "
                 "(|a_mem - 0.5| < " << kBorderline
              << ") move across it, i.e. elasticity magnitude — what "
                 "the mechanism actually consumes — is robust; the "
                 "binary class label is not meaningful near 0.5.\n";
}

void
BM_ProfileOpenPage(benchmark::State &state)
{
    sim::PlatformConfig config = sim::PlatformConfig::table1();
    config.dram.pagePolicy = sim::PagePolicy::Open;
    const sim::Profiler profiler(config, 20000);
    const auto &workload = sim::workloadByName("dedup");
    for (auto _ : state) {
        auto fit = profiler.profileAndFit(workload);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_ProfileOpenPage)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
