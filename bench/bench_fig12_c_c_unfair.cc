/**
 * @file
 * Figure 12 / Example 3: freqmine (C) sharing with linear_regression
 * (C). To equalize slowdowns, linear_regression must receive far
 * more of both resources; freqmine is left below its equal split —
 * SI and EF violated. Proportional elasticity divides the resources
 * almost equally between the two cache-hungry workloads.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"

namespace {

using namespace ref;

void
BM_FairnessCheckForPair(benchmark::State &state)
{
    const auto agents =
        bench::fitAgents({"freqmine", "linear_regression"}, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);
    for (auto _ : state) {
        auto report = core::checkFairness(agents, capacity, allocation);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_FairnessCheckForPair);

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 12",
        "freqmine (C) + linear_regression (C): equal slowdown "
        "violates SI and EF for freqmine");
    ref::bench::printPairComparison("freqmine", "linear_regression");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
