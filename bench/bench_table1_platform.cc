/**
 * @file
 * Table 1: platform parameters, plus a sanity run of the simulator
 * at the sweep's corner configurations.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printTable()
{
    bench::printBanner("Table 1", "platform parameters");
    const auto config = sim::PlatformConfig::table1();

    Table table({"component", "specification"});
    table.addRow({"Processor",
                  formatFixed(config.core.clockGHz, 0) +
                      " GHz OOO cores, " +
                      std::to_string(config.core.issueWidth) +
                      "-width issue and commit"});
    table.addRow({"L1 Cache",
                  std::to_string(config.l1.sizeBytes / 1024) + " KB, " +
                      std::to_string(config.l1.associativity) +
                      "-way set associative, " +
                      std::to_string(config.l1.blockBytes) +
                      "-byte block size, " +
                      std::to_string(config.l1.latencyCycles) +
                      "-cycle latency"});
    std::string l2_sizes;
    for (auto size : sim::table1CacheSizes()) {
        if (!l2_sizes.empty())
            l2_sizes += ", ";
        l2_sizes += size >= 1024 * 1024
                        ? std::to_string(size / (1024 * 1024)) + " MB"
                        : std::to_string(size / 1024) + " KB";
    }
    table.addRow({"L2 Cache",
                  "[" + l2_sizes + "], " +
                      std::to_string(config.l2.associativity) +
                      "-way set associative, " +
                      std::to_string(config.l2.blockBytes) +
                      "-byte block size, " +
                      std::to_string(config.l2.latencyCycles) +
                      "-cycle latency"});
    table.addRow({"DRAM Controller",
                  "Closed-page, banked, round-robin service"});
    std::string bandwidths;
    for (double bandwidth : sim::table1Bandwidths()) {
        if (!bandwidths.empty())
            bandwidths += ", ";
        bandwidths += formatFixed(bandwidth, 1) + " GB/s";
    }
    table.addRow({"DRAM Bandwidth",
                  "[" + bandwidths + "], single channel"});
    table.print(std::cout);

    // Exercise the extreme configurations once.
    std::cout << "\nsanity: histogram IPC at sweep corners\n";
    const auto profiler = bench::defaultProfiler(40000);
    const auto points = profiler.sweep(
        sim::workloadByName("histogram"), {0.8, 12.8},
        {128 * 1024, 2 * 1024 * 1024});
    Table corners({"bandwidth (GB/s)", "L2 (MB)", "IPC"});
    for (const auto &point : points) {
        corners.addRow({formatFixed(point.bandwidthGBps, 1),
                        formatFixed(point.cacheMB, 3),
                        formatFixed(point.ipc, 4)});
    }
    corners.print(std::cout);
}

void
BM_SimulateHundredKOps(benchmark::State &state)
{
    const auto &workload = sim::workloadByName("histogram");
    sim::TraceGenerator generator(workload.trace);
    const auto trace = generator.generate(100000);
    const auto config = sim::PlatformConfig::table1();
    for (auto _ : state) {
        sim::CmpSystem system(config);
        auto result = system.run(trace, workload.timing);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_SimulateHundredKOps)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
