/**
 * @file
 * Figure 14: weighted system throughput for the 8-core mixes
 * WD6-WD10. As in the paper, with more agents the equal-slowdown
 * mechanism's max-min objective grows costlier — it can fall to or
 * below the proportional elasticity mechanism while still providing
 * no game-theoretic guarantees.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "throughput.hh"

namespace {

using namespace ref;

void
printSlowdownVersusRef()
{
    // The Figure 14 headline: count mixes where equal slowdown does
    // not beat REF.
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism proportional;
    const auto equal_slowdown = core::makeEqualSlowdown();
    int ref_at_least = 0;
    for (const auto &mix : sim::table2EightCoreMixes()) {
        const auto agents = bench::fitAgents(mix.members, 60000);
        const double ref_throughput = core::weightedSystemThroughput(
            agents, proportional.allocate(agents, capacity), capacity);
        const double es_throughput = core::weightedSystemThroughput(
            agents, equal_slowdown.allocate(agents, capacity),
            capacity);
        ref_at_least += ref_throughput >= es_throughput - 1e-6;
    }
    std::cout << "mixes where proportional elasticity >= equal "
                 "slowdown: "
              << ref_at_least << "/5\n";
}

void
BM_ClosedFormAllocationEightAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2EightCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_ClosedFormAllocationEightAgents);

void
BM_GpSolveEightAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2EightCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto mechanism = core::makeMaxWelfareFair();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpSolveEightAgents)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 14",
        "weighted system throughput, 8-core mixes WD6-WD10");
    ref::bench::printThroughputComparison(
        ref::sim::table2EightCoreMixes());
    printSlowdownVersusRef();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
