/**
 * @file
 * Figure 8: quality of the Cobb-Douglas fits.
 *  (a) R-squared for all 28 benchmarks;
 *  (b) simulated vs fitted IPC for high-R-squared representatives
 *      (ferret, fmm);
 *  (c) the same for low-R-squared representatives (radiosity,
 *      string_match).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

constexpr std::size_t kTraceOps = 80000;

void
printRSquaredTable(const sim::Profiler &profiler)
{
    std::cout << "--- Figure 8a: coefficient of determination ---\n";
    // One sweepMany batch: all 28 workloads' cells share the pool.
    const auto &workloads = sim::allWorkloads();
    const auto fits = bench::fitWorkloads(profiler, workloads);
    Table table({"benchmark", "R^2 (log fit)", "R^2 (raw IPC)",
                 "class"});
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        table.addRow({workloads[i].name,
                      formatFixed(fits[i].rSquaredLog, 3),
                      formatFixed(fits[i].rSquaredLinear, 3),
                      std::string(1, workloads[i].expectedClass)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
printSimVsFit(const sim::Profiler &profiler, const std::string &name)
{
    const auto &workload = sim::workloadByName(name);
    const auto points = profiler.sweep(workload);
    const auto fit = core::fitCobbDouglas(
        sim::Profiler::toPerformanceProfile(points));

    std::cout << name << " (R^2 = " << formatFixed(fit.rSquaredLog, 3)
              << "):\n";
    Table table({"bandwidth (GB/s)", "cache (MB)", "simulated IPC",
                 "fitted IPC"});
    for (const auto &point : points) {
        table.addRow(
            {formatFixed(point.bandwidthGBps, 1),
             formatFixed(point.cacheMB, 3), formatFixed(point.ipc, 4),
             formatFixed(
                 fit.predict({point.bandwidthGBps, point.cacheMB}),
                 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
printFigure()
{
    bench::printBanner("Figure 8",
                       "Cobb-Douglas fit quality across the 5x5 "
                       "Table 1 sweep");
    // One profiler for the whole figure: 8b/8c re-sweep workloads 8a
    // already simulated, so their cells come out of the cell cache.
    const auto profiler = bench::defaultProfiler(kTraceOps);
    printRSquaredTable(profiler);
    std::cout << "--- Figure 8b: high-R^2 representatives ---\n";
    printSimVsFit(profiler, "ferret");
    printSimVsFit(profiler, "fmm");
    std::cout << "--- Figure 8c: low-R^2 representatives ---\n";
    printSimVsFit(profiler, "radiosity");
    printSimVsFit(profiler, "string_match");
}

void
BM_ProfileAndFitOneWorkload(benchmark::State &state)
{
    const auto profiler = bench::defaultProfiler(20000);
    const auto &workload = sim::workloadByName("ferret");
    for (auto _ : state) {
        auto fit = profiler.profileAndFit(workload);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_ProfileAndFitOneWorkload)->Unit(benchmark::kMillisecond);

void
BM_FitOnly(benchmark::State &state)
{
    const auto profiler = bench::defaultProfiler(20000);
    const auto profile = sim::Profiler::toPerformanceProfile(
        profiler.sweep(sim::workloadByName("ferret")));
    for (auto _ : state) {
        auto fit = core::fitCobbDouglas(profile);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_FitOnly);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
