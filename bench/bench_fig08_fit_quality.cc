/**
 * @file
 * Figure 8: quality of the Cobb-Douglas fits.
 *  (a) R-squared for all 28 benchmarks;
 *  (b) simulated vs fitted IPC for high-R-squared representatives
 *      (ferret, fmm);
 *  (c) the same for low-R-squared representatives (radiosity,
 *      string_match).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

constexpr std::size_t kTraceOps = 80000;

void
printRSquaredTable()
{
    std::cout << "--- Figure 8a: coefficient of determination ---\n";
    const auto profiler = bench::defaultProfiler(kTraceOps);
    Table table({"benchmark", "R^2 (log fit)", "R^2 (raw IPC)",
                 "class"});
    for (const auto &workload : sim::allWorkloads()) {
        const auto fit = profiler.profileAndFit(workload);
        table.addRow({workload.name, formatFixed(fit.rSquaredLog, 3),
                      formatFixed(fit.rSquaredLinear, 3),
                      std::string(1, workload.expectedClass)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
printSimVsFit(const std::string &name)
{
    const auto profiler = bench::defaultProfiler(kTraceOps);
    const auto &workload = sim::workloadByName(name);
    const auto points = profiler.sweep(workload);
    const auto fit = core::fitCobbDouglas(
        sim::Profiler::toPerformanceProfile(points));

    std::cout << name << " (R^2 = " << formatFixed(fit.rSquaredLog, 3)
              << "):\n";
    Table table({"bandwidth (GB/s)", "cache (MB)", "simulated IPC",
                 "fitted IPC"});
    for (const auto &point : points) {
        table.addRow(
            {formatFixed(point.bandwidthGBps, 1),
             formatFixed(point.cacheMB, 3), formatFixed(point.ipc, 4),
             formatFixed(
                 fit.predict({point.bandwidthGBps, point.cacheMB}),
                 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
printFigure()
{
    bench::printBanner("Figure 8",
                       "Cobb-Douglas fit quality across the 5x5 "
                       "Table 1 sweep");
    printRSquaredTable();
    std::cout << "--- Figure 8b: high-R^2 representatives ---\n";
    printSimVsFit("ferret");
    printSimVsFit("fmm");
    std::cout << "--- Figure 8c: low-R^2 representatives ---\n";
    printSimVsFit("radiosity");
    printSimVsFit("string_match");
}

void
BM_ProfileAndFitOneWorkload(benchmark::State &state)
{
    const auto profiler = bench::defaultProfiler(20000);
    const auto &workload = sim::workloadByName("ferret");
    for (auto _ : state) {
        auto fit = profiler.profileAndFit(workload);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_ProfileAndFitOneWorkload)->Unit(benchmark::kMillisecond);

void
BM_FitOnly(benchmark::State &state)
{
    const auto profiler = bench::defaultProfiler(20000);
    const auto profile = sim::Profiler::toPerformanceProfile(
        profiler.sweep(sim::workloadByName("ferret")));
    for (auto _ : state) {
        auto fit = core::fitCobbDouglas(profile);
        benchmark::DoNotOptimize(fit);
    }
}
BENCHMARK(BM_FitOnly);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
