/**
 * @file
 * Ablation: what enforcement buys (extends Section 4.4).
 *
 * The mechanism computes fair shares; whether users actually receive
 * them depends on hardware enforcement. We co-schedule a
 * cache-friendly tenant with three streaming tenants under three
 * regimes — unmanaged (shared LRU + FIFO channel), bandwidth-only
 * WFQ, and full REF enforcement (WFQ + way partitioning) — and
 * report the cache tenant's IPC and each regime's contended
 * bandwidth split.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "sched/enforce.hh"
#include "util/table.hh"

namespace {

using namespace ref;

struct Regime
{
    const char *name;
    sched::EnforcementPolicy policy;
};

void
printAblation()
{
    bench::printBanner(
        "Ablation",
        "value of enforcement: unmanaged vs WFQ vs WFQ+partition");

    const std::vector<std::string> tenants{"histogram", "dedup",
                                           "facesim", "ocean_cp"};
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto agents = bench::fitAgents(tenants, 60000);
    const auto allocation =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);

    std::vector<double> cache_fractions, bandwidth_fractions;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const auto fractions = allocation.fractions(i, capacity);
        bandwidth_fractions.push_back(fractions[0]);
        cache_fractions.push_back(fractions[1]);
    }

    sim::PlatformConfig platform = sim::PlatformConfig::table1();
    platform.dram.bandwidthGBps = 6.4;

    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const auto &name : tenants) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(25000));
        timings.push_back(workload.timing);
    }

    const Regime regimes[] = {
        {"unmanaged (LRU + FIFO)", {false, false}},
        {"WFQ bandwidth only", {false, true}},
        {"WFQ + way partition (REF)", {true, true}},
    };

    Table table({"regime", "histogram IPC", "histogram bw share",
                 "dedup bw share", "throughput sum (IPC)"});
    for (const auto &regime : regimes) {
        sched::EnforcedCmpSystem system(platform, cache_fractions,
                                        bandwidth_fractions,
                                        regime.policy);
        const auto results = system.run(traces, timings);
        double ipc_sum = 0;
        for (const auto &result : results)
            ipc_sum += result.ipc;
        table.addRow({regime.name, formatFixed(results[0].ipc, 4),
                      formatPercent(results[0].bandwidthShare, 1),
                      formatPercent(results[1].bandwidthShare, 1),
                      formatFixed(ipc_sum, 4)});
    }
    table.print(std::cout);

    std::cout << "\nallocated shares (REF): histogram "
              << formatPercent(bandwidth_fractions[0], 1)
              << " bandwidth / "
              << formatPercent(cache_fractions[0], 1)
              << " cache; streamers split the rest.\nWithout "
                 "enforcement the streamers consume the channel by "
                 "demand and thrash the shared cache; enforcement "
                 "returns the cache tenant to its fair share.\n";
}

void
BM_UnmanagedCoRun(benchmark::State &state)
{
    sim::PlatformConfig platform = sim::PlatformConfig::table1();
    platform.dram.bandwidthGBps = 6.4;
    std::vector<sim::Trace> traces;
    std::vector<sim::TimingParams> timings;
    for (const char *name : {"histogram", "dedup"}) {
        const auto &workload = sim::workloadByName(name);
        traces.push_back(
            sim::TraceGenerator(workload.trace).generate(8000));
        timings.push_back(workload.timing);
    }
    sched::EnforcementPolicy unmanaged{false, false};
    for (auto _ : state) {
        sched::EnforcedCmpSystem system(platform, {0.5, 0.5},
                                        {0.5, 0.5}, unmanaged);
        auto results = system.run(traces, timings);
        benchmark::DoNotOptimize(results);
    }
}
BENCHMARK(BM_UnmanagedCoRun)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
