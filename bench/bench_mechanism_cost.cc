/**
 * @file
 * Section 4.1/4.5 ablation: "the mechanism is computationally
 * trivial". Compares the closed-form proportional elasticity
 * allocation (Eq. 13) against the geometric-programming mechanisms
 * that require an iterative convex solve, across population sizes
 * and resource counts.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare_mechanisms.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ref;

core::AgentList
randomAgents(std::size_t n, std::size_t resources, std::uint64_t seed)
{
    Rng rng(seed);
    core::AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        core::Vector alphas(resources);
        for (auto &alpha : alphas)
            alpha = rng.uniform(0.05, 1.0);
        agents.emplace_back("agent-" + std::to_string(i),
                            core::CobbDouglasUtility(alphas));
    }
    return agents;
}

core::SystemCapacity
capacityFor(std::size_t resources)
{
    core::Vector caps(resources);
    for (std::size_t r = 0; r < resources; ++r)
        caps[r] = 10.0 * static_cast<double>(r + 1);
    return core::SystemCapacity::fromCapacities(caps);
}

void
printHeadline()
{
    bench::printBanner(
        "Mechanism cost ablation",
        "closed-form Eq. 13 vs geometric programming");
    std::cout
        << "The timing table below (google-benchmark) quantifies the "
           "gap the paper\ncalls 'computationally trivial': the "
           "closed form is O(N*R) arithmetic while\nthe welfare "
           "mechanisms run an iterative penalty/Newton solve per "
           "allocation.\n";
}

void
BM_ClosedForm(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto r = static_cast<std::size_t>(state.range(1));
    const auto agents = randomAgents(n, r, 5);
    const auto capacity = capacityFor(r);
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_ClosedForm)
    ->Args({2, 2})
    ->Args({8, 2})
    ->Args({64, 2})
    ->Args({8, 4})
    ->Args({8, 8});

void
BM_GpMaxWelfareUnfair(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto r = static_cast<std::size_t>(state.range(1));
    const auto agents = randomAgents(n, r, 5);
    const auto capacity = capacityFor(r);
    const auto mechanism = core::makeMaxWelfareUnfair();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpMaxWelfareUnfair)
    ->Args({2, 2})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_GpMaxWelfareFair(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto r = static_cast<std::size_t>(state.range(1));
    const auto agents = randomAgents(n, r, 5);
    const auto capacity = capacityFor(r);
    const auto mechanism = core::makeMaxWelfareFair();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpMaxWelfareFair)
    ->Args({2, 2})
    ->Args({8, 2})
    ->Unit(benchmark::kMillisecond);

void
BM_GpEqualSlowdown(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto agents = randomAgents(n, 2, 5);
    const auto capacity = capacityFor(2);
    const auto mechanism = core::makeEqualSlowdown();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpEqualSlowdown)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printHeadline();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
