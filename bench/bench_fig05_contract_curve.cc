/**
 * @file
 * Figure 5: the contract curve — all Pareto-efficient allocations,
 * where the two users' marginal rates of substitution are equal
 * (Eq. 10).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 5",
                       "contract curve: Pareto-efficient set "
                       "(Eq. 10)");
    const auto box = bench::paperExampleBox();

    Table table({"x1 (GB/s)", "y1 on contract curve (MB)",
                 "MRS user1", "MRS user2", "PE?"});
    for (double x1 = 2.0; x1 < 24.0; x1 += 2.0) {
        const double y1 = box.contractCurve(x1);
        const double mrs1 =
            box.user1().utility().marginalRateOfSubstitution(
                0, 1, {x1, y1});
        const double mrs2 =
            box.user2().utility().marginalRateOfSubstitution(
                0, 1, {box.width() - x1, box.height() - y1});
        table.addRow({formatFixed(x1, 1), formatFixed(y1, 3),
                      formatFixed(mrs1, 4), formatFixed(mrs2, 4),
                      box.isParetoEfficient(x1, y1) ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nboth origins are PE corner cases "
                 "(one user's utility is zero there); off-curve "
                 "points fail the tangency test, e.g. the midpoint: "
              << (box.isParetoEfficient(12.0, 6.0) ? "PE" : "not PE")
              << "\n";
}

void
BM_ContractCurvePoint(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        double y1 = box.contractCurve(12.0);
        benchmark::DoNotOptimize(y1);
    }
}
BENCHMARK(BM_ContractCurvePoint);

void
BM_ParetoPointTest(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        bool pe = box.isParetoEfficient(12.0, 1.714);
        benchmark::DoNotOptimize(pe);
    }
}
BENCHMARK(BM_ParetoPointTest);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
