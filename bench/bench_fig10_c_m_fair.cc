/**
 * @file
 * Figure 10 / Example 1: histogram (C) sharing with dedup (M). Both
 * mechanisms allocate more cache to histogram and more bandwidth to
 * dedup; in this particular pairing even equal slowdown happens to
 * satisfy SI, EF and PE — though it cannot guarantee them.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"

namespace {

using namespace ref;

void
BM_RefAllocationForPair(benchmark::State &state)
{
    const auto agents = bench::fitAgents({"histogram", "dedup"}, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_RefAllocationForPair);

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 10",
        "histogram (C) + dedup (M): equal slowdown vs proportional "
        "elasticity — a pairing where both are fair");
    ref::bench::printPairComparison("histogram", "dedup");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
