/**
 * @file
 * Ablation: why Eq. 12's re-scaling matters.
 *
 * The Nash-bargaining and CEEI equivalences (Section 4.2) hold for
 * HOMOGENEOUS utilities, which is exactly what re-scaling the
 * elasticities to sum to one delivers. This ablation allocates with
 * (a) re-scaled and (b) raw elasticities for agents whose elasticity
 * sums differ, and shows the raw variant drifts away from the CEEI
 * outcome and can break envy-freeness.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/ceei.hh"
#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "util/table.hh"

namespace {

using namespace ref;

/** REF without Eq. 12: allocate in proportion to RAW elasticities. */
core::Allocation
allocateRaw(const core::AgentList &agents,
            const core::SystemCapacity &capacity)
{
    core::Allocation allocation(agents.size(), capacity.count());
    for (std::size_t r = 0; r < capacity.count(); ++r) {
        double denominator = 0;
        for (const auto &agent : agents)
            denominator += agent.utility().elasticity(r);
        for (std::size_t i = 0; i < agents.size(); ++i) {
            allocation.at(i, r) = agents[i].utility().elasticity(r) /
                                  denominator * capacity.capacity(r);
        }
    }
    return allocation;
}

void
printAblation()
{
    bench::printBanner(
        "Ablation", "proportional shares with vs without Eq. 12 "
                    "re-scaling");

    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    // Agent sums differ sharply: 0.4 vs 1.8 — the case re-scaling
    // exists for.
    core::AgentList agents;
    agents.emplace_back("flat", core::CobbDouglasUtility({0.3, 0.1}));
    agents.emplace_back("steep",
                        core::CobbDouglasUtility({0.9, 0.9}));

    const auto rescaled =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);
    const auto raw = allocateRaw(agents, capacity);
    const auto ceei =
        core::CeeiMarket(agents, capacity).solveClosedForm();

    for (const auto &[name, allocation] :
         {std::pair<std::string, const core::Allocation &>{
              "re-scaled (Eq. 12)", rescaled},
          {"raw elasticities", raw},
          {"CEEI market", ceei.allocation}}) {
        std::cout << "--- " << name << " ---\n";
        Table table({"agent", "bandwidth (GB/s)", "cache (MB)"});
        for (std::size_t i = 0; i < agents.size(); ++i) {
            table.addRow({agents[i].name(),
                          formatFixed(allocation.at(i, 0), 3),
                          formatFixed(allocation.at(i, 1), 3)});
        }
        table.print(std::cout);
        const auto report = core::checkFairness(
            agents, capacity, allocation, {1e-6, 1e-2, 1e-9});
        std::cout << "SI "
                  << (report.sharingIncentives.satisfied ? "ok"
                                                         : "VIOLATED")
                  << " | EF "
                  << (report.envyFreeness.satisfied ? "ok"
                                                    : "VIOLATED")
                  << " | PE "
                  << (report.paretoEfficiency.satisfied ? "ok"
                                                        : "violated")
                  << "\n\n";
    }
    std::cout << "re-scaled shares coincide with CEEI; raw shares "
                 "drift from the market outcome and shortchange the "
                 "low-sum agent.\n";
}

void
BM_RescaledAllocate(benchmark::State &state)
{
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    core::AgentList agents;
    agents.emplace_back("flat", core::CobbDouglasUtility({0.3, 0.1}));
    agents.emplace_back("steep",
                        core::CobbDouglasUtility({0.9, 0.9}));
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_RescaledAllocate);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
