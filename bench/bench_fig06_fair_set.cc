/**
 * @file
 * Figure 6: the fair allocation set — the intersection of both
 * users' envy-free sets with the contract curve.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/fairness.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 6",
                       "fair set = envy-free ∩ contract curve");
    const auto box = bench::paperExampleBox();
    const auto segment = box.fairSegment(false);

    std::cout << "fair segment of the contract curve: x1 in ["
              << formatFixed(segment.x1Low, 3) << ", "
              << formatFixed(segment.x1High, 3) << "] GB/s\n\n";

    Table table({"x1 (GB/s)", "y1 (MB)", "EF?", "PE?", "fair?"});
    for (double x1 = 10.0; x1 <= 22.0; x1 += 1.0) {
        const double y1 = box.contractCurve(x1);
        const bool ef = box.isEnvyFree(x1, y1);
        const bool pe = box.isParetoEfficient(x1, y1);
        table.addRow({formatFixed(x1, 1), formatFixed(y1, 3),
                      ef ? "yes" : "no", pe ? "yes" : "no",
                      ef && pe ? "FAIR" : "-"});
    }
    table.print(std::cout);

    // The REF allocation lies inside the fair set.
    std::cout << "\nproportional elasticity point (18 GB/s, 4 MB) in "
                 "the fair segment: "
              << (segment.x1Low <= 18.0 && 18.0 <= segment.x1High
                      ? "yes"
                      : "NO")
              << "\n";
}

void
BM_FairSegment(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        auto segment = box.fairSegment(false);
        benchmark::DoNotOptimize(segment);
    }
}
BENCHMARK(BM_FairSegment);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
