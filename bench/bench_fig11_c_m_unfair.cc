/**
 * @file
 * Figure 11 / Example 2: barnes (C) sharing with canneal (M). Equal
 * slowdown hands canneal less than half of BOTH resources, violating
 * SI and EF; proportional elasticity gives canneal more than half of
 * the bandwidth, restoring its incentive to share.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/welfare_mechanisms.hh"

namespace {

using namespace ref;

void
BM_EqualSlowdownSolveForPair(benchmark::State &state)
{
    const auto agents = bench::fitAgents({"barnes", "canneal"}, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto mechanism = core::makeEqualSlowdown();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_EqualSlowdownSolveForPair)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 11",
        "barnes (C) + canneal (M): equal slowdown violates SI and EF "
        "for canneal");
    ref::bench::printPairComparison("barnes", "canneal");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
