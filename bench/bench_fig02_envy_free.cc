/**
 * @file
 * Figure 2: the envy-free regions of both users (Eqs. 6-7). For each
 * bandwidth amount x1 we print the boundary cache amount at which the
 * user becomes indifferent between the two bundles; user 1 is
 * envy-free above its boundary, user 2 below its own. The midpoint
 * and the two corners are checked to be EF, as the paper notes.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 2", "envy-free regions (Eqs. 6-7)");
    const auto box = bench::paperExampleBox();

    Table table({"x1 (GB/s)", "EF boundary user1 (MB)",
                 "EF boundary user2 (MB)", "midpoint EF?"});
    for (double x1 = 2.0; x1 < 24.0; x1 += 2.0) {
        const auto b1 = box.envyBoundary(1, x1);
        const auto b2 = box.envyBoundary(2, x1);
        table.addRow({formatFixed(x1, 1),
                      b1 ? formatFixed(*b1, 3) : "-",
                      b2 ? formatFixed(*b2, 3) : "-",
                      box.isEnvyFree(x1, 6.0) ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nalways-EF points (Section 3.2):\n"
              << "  midpoint (12, 6):   "
              << (box.isEnvyFree(12.0, 6.0) ? "EF" : "NOT EF") << "\n"
              << "  corner (0, 12):     "
              << (box.isEnvyFree(0.0, 12.0) ? "EF" : "NOT EF") << "\n"
              << "  corner (24, 0):     "
              << (box.isEnvyFree(24.0, 0.0) ? "EF" : "NOT EF") << "\n";
}

void
BM_EnvyBoundary(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        auto boundary = box.envyBoundary(1, 10.0);
        benchmark::DoNotOptimize(boundary);
    }
}
BENCHMARK(BM_EnvyBoundary);

void
BM_EnvyFreePointTest(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        bool ef = box.isEnvyFree(10.0, 5.0);
        benchmark::DoNotOptimize(ef);
    }
}
BENCHMARK(BM_EnvyFreePointTest);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
