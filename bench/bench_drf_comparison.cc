/**
 * @file
 * Related-work comparison (paper Sections 2 and 6): Dominant
 * Resource Fairness vs proportional elasticity.
 *
 * DRF guarantees SI/EF/PE/SP — but on the Leontief domain, where
 * resources are perfect complements. Hardware resources substitute
 * (Figure 3), so forcing a Cobb-Douglas agent through DRF means
 * collapsing its preferences to a demand vector, losing the
 * diminishing-returns information. This harness quantifies that
 * loss: each agent's Leontief demand vector is the best fixed-ratio
 * approximation of its Cobb-Douglas preferences (its elasticity
 * proportions), DRF allocates, and the outcome is valued with the
 * TRUE Cobb-Douglas utilities.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/drf.hh"
#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "util/table.hh"

namespace {

using namespace ref;

/**
 * Demand vector for a Cobb-Douglas agent: the resource ratio the
 * agent would buy at uniform per-capacity prices — its re-scaled
 * elasticities applied to the capacities.
 */
core::LeontiefUtility
demandVectorFor(const core::CobbDouglasUtility &utility,
                const core::SystemCapacity &capacity)
{
    const auto rescaled = utility.rescaled();
    core::Vector demands(capacity.count());
    for (std::size_t r = 0; r < capacity.count(); ++r)
        demands[r] = rescaled.elasticity(r) * capacity.capacity(r);
    return core::LeontiefUtility(demands);
}

void
printComparison()
{
    bench::printBanner(
        "DRF comparison",
        "Leontief DRF vs Cobb-Douglas proportional elasticity");

    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto agents =
        bench::fitAgents({"histogram", "freqmine", "canneal", "dedup"},
                         60000);

    // DRF over the Leontief approximations.
    std::vector<core::LeontiefAgent> leontief_agents;
    for (const auto &agent : agents) {
        leontief_agents.emplace_back(
            agent.name(), demandVectorFor(agent.utility(), capacity));
    }
    const auto drf = core::allocateDrf(leontief_agents, capacity);
    const auto ref_alloc =
        core::ProportionalElasticityMechanism().allocate(agents,
                                                         capacity);

    Table table({"agent", "DRF bundle (GB/s, MB)",
                 "REF bundle (GB/s, MB)", "U_i under DRF",
                 "U_i under REF"});
    for (std::size_t i = 0; i < agents.size(); ++i) {
        table.addRow(
            {agents[i].name(),
             "(" + formatFixed(drf.allocation.at(i, 0), 2) + ", " +
                 formatFixed(drf.allocation.at(i, 1), 2) + ")",
             "(" + formatFixed(ref_alloc.at(i, 0), 2) + ", " +
                 formatFixed(ref_alloc.at(i, 1), 2) + ")",
             formatFixed(core::weightedUtility(
                             agents[i], drf.allocation.agentShare(i),
                             capacity),
                         4),
             formatFixed(core::weightedUtility(
                             agents[i], ref_alloc.agentShare(i),
                             capacity),
                         4)});
    }
    table.print(std::cout);

    const double drf_throughput = core::weightedSystemThroughput(
        agents, drf.allocation, capacity);
    const double ref_throughput = core::weightedSystemThroughput(
        agents, ref_alloc, capacity);
    std::cout << "\nweighted system throughput (true Cobb-Douglas "
                 "utilities):\n  DRF over demand vectors: "
              << formatFixed(drf_throughput, 3)
              << "\n  proportional elasticity: "
              << formatFixed(ref_throughput, 3) << "  ("
              << formatPercent(
                     ref_throughput / drf_throughput - 1.0, 1)
              << " better)\n";

    // DRF can also waste capacity: fixed-ratio bundles cannot soak
    // up a resource the binding agents do not want.
    const auto totals = drf.allocation.totals();
    std::cout << "\nDRF leftover capacity: bandwidth "
              << formatPercent(
                     1.0 - totals[0] / capacity.capacity(0), 1)
              << ", cache "
              << formatPercent(
                     1.0 - totals[1] / capacity.capacity(1), 1)
              << " (REF always exhausts both)\n";
}

void
BM_DrfAllocate(benchmark::State &state)
{
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    std::vector<core::LeontiefAgent> agents;
    agents.emplace_back("a", core::LeontiefUtility({1.0, 4.0}));
    agents.emplace_back("b", core::LeontiefUtility({3.0, 1.0}));
    agents.emplace_back("c", core::LeontiefUtility({2.0, 2.0}));
    for (auto _ : state) {
        auto result = core::allocateDrf(agents, capacity);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_DrfAllocate);

} // namespace

int
main(int argc, char **argv)
{
    printComparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
