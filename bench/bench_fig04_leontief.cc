/**
 * @file
 * Figure 4: Leontief (perfect-complement) indifference curves for the
 * paper's Eq. 8 example u = min{x, 2y} — demand vector 2 GB/s of
 * bandwidth per 1 MB of cache. Shows the L-shape (no substitution)
 * and the wasted amounts of disproportional allocations.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/leontief.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 4",
                       "Leontief indifference curves (Eq. 8)");
    const core::LeontiefUtility u({2.0, 1.0});  // u = min{x/2, y}.

    std::cout << "u = min{x1, 2 y1} in the paper's form; demand "
                 "vector (2 GB/s, 1 MB)\n\n";

    Table table({"bandwidth x", "cache y", "utility",
                 "binding resource", "wasted bandwidth",
                 "wasted cache"});
    const std::vector<core::Vector> points{
        {4.0, 2.0}, {10.0, 2.0}, {4.0, 10.0},
        {8.0, 4.0}, {16.0, 4.0}, {6.0, 3.0}};
    for (const auto &point : points) {
        const auto minimal = u.minimalEquivalent(point);
        const auto binding = u.bindingResources(point);
        std::string binding_name =
            binding.size() == 2
                ? "both"
                : (binding[0] == 0 ? "bandwidth" : "cache");
        table.addRow({formatFixed(point[0], 1),
                      formatFixed(point[1], 1),
                      formatFixed(u.value(point), 3), binding_name,
                      formatFixed(point[0] - minimal[0], 1),
                      formatFixed(point[1] - minimal[1], 1)});
    }
    table.print(std::cout);

    std::cout
        << "\n(4, 2), (10, 2) and (4, 10) all give utility "
        << formatFixed(u.value({4.0, 2.0}), 2)
        << ": disproportional amounts are wasted, no substitution — "
           "contrast with Figure 3.\n";
}

void
BM_LeontiefValue(benchmark::State &state)
{
    const core::LeontiefUtility u({2.0, 1.0});
    const core::Vector x{8.0, 4.0};
    for (auto _ : state) {
        double value = u.value(x);
        benchmark::DoNotOptimize(value);
    }
}
BENCHMARK(BM_LeontiefValue);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
