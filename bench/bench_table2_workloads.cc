/**
 * @file
 * Table 2: the ten multiprogrammed workload mixes WD1-WD10 with
 * their C/M compositions, as used by Figures 13 and 14.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printTable()
{
    bench::printBanner("Table 2", "workload characterization");
    Table table({"name", "benchmarks", "C/M"});
    for (const auto &mix : sim::table2AllMixes()) {
        std::string members;
        for (const auto &member : mix.members) {
            if (!members.empty())
                members += ", ";
            members += member;
        }
        table.addRow({mix.name, members, mix.composition});
    }
    table.print(std::cout);

    std::cout << "\nnote: streamcluster follows Table 2's arithmetic "
                 "(class C); the paper's Section 5.3 prose calls it "
                 "streaming — see DESIGN.md.\n";
}

void
BM_MixLookup(benchmark::State &state)
{
    for (auto _ : state) {
        auto mixes = sim::table2AllMixes();
        benchmark::DoNotOptimize(mixes);
    }
}
BENCHMARK(BM_MixLookup);

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
