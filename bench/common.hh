/**
 * @file
 * Shared helpers for the experiment harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper:
 * it first prints the paper-shaped rows/series (so EXPERIMENTS.md can
 * be checked against the output), then runs google-benchmark timings
 * of the code path under test.
 */

#ifndef REF_BENCH_COMMON_HH
#define REF_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/agent.hh"
#include "core/edgeworth.hh"
#include "core/fitting.hh"
#include "sim/profiler.hh"

namespace ref::bench {

/** The Section 3 running example: u1 = x^0.6 y^0.4, u2 = x^0.2 y^0.8
 *  over 24 GB/s and 12 MB. */
core::EdgeworthBox paperExampleBox();

/** Agents of the running example. */
core::AgentList paperExampleAgents();

/**
 * Default profiler over the Table 1 platform. jobs = 0 honours
 * REF_JOBS and falls back to the hardware concurrency; pass 1 to
 * force a serial sweep. Profiles are bit-identical for every jobs
 * value.
 */
sim::Profiler defaultProfiler(std::size_t trace_ops = 80000,
                              std::size_t jobs = 0);

/** Profile and fit one named workload. */
core::CobbDouglasFit fitWorkload(const std::string &name,
                                 std::size_t trace_ops = 80000);

/**
 * Fit every workload in one SweepRunner::sweepMany batch on the
 * caller's profiler (fits returned in input order). Sharing the
 * profiler across calls shares its cell cache, so overlapping grids
 * are simulated once per distinct cell.
 */
std::vector<core::CobbDouglasFit>
fitWorkloads(const sim::Profiler &profiler,
             const std::vector<sim::WorkloadSpec> &workloads);

/**
 * Fit a list of workloads into an agent list (names preserved) on a
 * caller-shared profiler, batched through sweepMany.
 */
core::AgentList fitAgents(const sim::Profiler &profiler,
                          const std::vector<std::string> &names);

/** Convenience overload: fitAgents on a fresh default profiler. */
core::AgentList fitAgents(const std::vector<std::string> &names,
                          std::size_t trace_ops = 80000);

/** Print the standard figure banner. */
void printBanner(const std::string &figure, const std::string &title);

/**
 * The shared harness behind Figures 10-12: fit the pair's utilities,
 * allocate with equal slowdown and with proportional elasticity,
 * print both allocations as percentages of total capacity, and
 * report each mechanism's SI/EF/PE outcome.
 */
void printPairComparison(const std::string &workload_a,
                         const std::string &workload_b,
                         std::size_t trace_ops = 80000);

} // namespace ref::bench

#endif // REF_BENCH_COMMON_HH
