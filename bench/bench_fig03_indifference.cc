/**
 * @file
 * Figure 3: Cobb-Douglas indifference curves for user 1 and the
 * marginal rate of substitution along them (Eq. 9). Three curves at
 * increasing utility levels, as in the paper.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner(
        "Figure 3",
        "Cobb-Douglas indifference curves and MRS (Eq. 9)");
    const auto box = bench::paperExampleBox();
    const auto &u1 = box.user1().utility();

    // Three reference bundles define curves I1 < I2 < I3.
    const std::vector<core::Vector> anchors{
        {4.0, 2.0}, {8.0, 4.0}, {14.0, 7.0}};
    for (std::size_t curve = 0; curve < anchors.size(); ++curve) {
        std::cout << "I" << curve + 1
                  << " (u = " << formatFixed(u1.value(anchors[curve]), 4)
                  << "):\n";
        Table table({"bandwidth x", "cache y", "MRS = (0.6/0.4)(y/x)"});
        for (double x = 2.0; x <= 22.0; x += 4.0) {
            const double y =
                box.indifferenceCurve(1, anchors[curve], x);
            table.addRow(
                {formatFixed(x, 1), formatFixed(y, 3),
                 formatFixed(
                     u1.marginalRateOfSubstitution(0, 1, {x, y}), 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "substitution example (Section 3.3): user 1 trades "
                 "(4 GB/s, 1 MB) for (1 GB/s, "
              << formatFixed(
                     box.indifferenceCurve(1, {4.0, 1.0}, 1.0), 3)
              << " MB) at equal utility\n";
}

void
BM_IndifferenceCurvePoint(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    const core::Vector anchor{8.0, 4.0};
    for (auto _ : state) {
        double y = box.indifferenceCurve(1, anchor, 5.0);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_IndifferenceCurvePoint);

void
BM_MarginalRateOfSubstitution(benchmark::State &state)
{
    const core::CobbDouglasUtility u({0.6, 0.4});
    const core::Vector x{6.0, 8.0};
    for (auto _ : state) {
        double mrs = u.marginalRateOfSubstitution(0, 1, x);
        benchmark::DoNotOptimize(mrs);
    }
}
BENCHMARK(BM_MarginalRateOfSubstitution);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
