/**
 * @file
 * Figure 1: the Edgeworth box of feasible allocations for the
 * Section 3 running example, including the worked point where user 1
 * holds (6 GB/s, 8 MB) and user 2 the complement (18 GB/s, 4 MB).
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 1",
                       "Edgeworth box of feasible allocations");
    const auto box = bench::paperExampleBox();
    std::cout << "box width  (memory bandwidth): " << box.width()
              << " GB/s\n"
              << "box height (cache size):       " << box.height()
              << " MB\n\n";

    Table table({"user1 bandwidth", "user1 cache", "user2 bandwidth",
                 "user2 cache", "feasible"});
    // A coarse grid of box points plus the paper's worked example.
    for (double x1 : {0.0, 6.0, 12.0, 18.0, 24.0}) {
        for (double y1 : {0.0, 4.0, 8.0, 12.0}) {
            const auto allocation = box.toAllocation(x1, y1);
            table.addRow({formatFixed(x1, 1), formatFixed(y1, 1),
                          formatFixed(box.width() - x1, 1),
                          formatFixed(box.height() - y1, 1),
                          allocation.feasible(box.capacity()) ? "yes"
                                                              : "no"});
        }
    }
    table.print(std::cout);

    const auto example = box.toAllocation(6.0, 8.0);
    std::cout << "\nworked example: user1 = (6 GB/s, 8 MB) "
              << "=> user2 = (" << example.at(1, 0) << " GB/s, "
              << example.at(1, 1) << " MB)\n";
}

void
BM_BoxPointToAllocation(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        auto allocation = box.toAllocation(6.0, 8.0);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_BoxPointToAllocation);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
