/**
 * @file
 * Shared harness for Figures 13 and 14: weighted system throughput
 * (Eq. 17) of four mechanisms over Table 2 workload mixes.
 */

#ifndef REF_BENCH_THROUGHPUT_HH
#define REF_BENCH_THROUGHPUT_HH

#include <vector>

#include "sim/workloads.hh"

namespace ref::bench {

/**
 * For each mix, fit utilities for its members, run the four
 * mechanisms of Section 5.5 — Max Welfare with fairness,
 * Proportional Elasticity, Max Welfare without fairness, Equal
 * Slowdown without fairness — and print the weighted system
 * throughput plus the fairness penalty relative to the unfair upper
 * bound. Returns false if any paper-shape expectation fails
 * (penalty above the threshold, REF diverging from constrained max
 * welfare).
 */
bool printThroughputComparison(
    const std::vector<sim::WorkloadMix> &mixes,
    std::size_t trace_ops = 60000, double penalty_threshold = 0.12);

} // namespace ref::bench

#endif // REF_BENCH_THROUGHPUT_HH
