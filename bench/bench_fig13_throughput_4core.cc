/**
 * @file
 * Figure 13: weighted system throughput for the 4-core mixes WD1-WD5
 * under the four allocation mechanisms of Section 5.5. Expected
 * shape: unfair max welfare on top, REF == fairness-constrained max
 * welfare within a <10% penalty, equal slowdown below the unfair
 * bound.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare_mechanisms.hh"
#include "throughput.hh"

namespace {

using namespace ref;

void
BM_ClosedFormAllocationFourAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2FourCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_ClosedFormAllocationFourAgents);

void
BM_GpSolveFourAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2FourCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto mechanism = core::makeMaxWelfareFair();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpSolveFourAgents)->Unit(benchmark::kMillisecond);

/**
 * The fig13 input pipeline: profile the WD1 mix's four workloads
 * over the Table 1 grid with a given number of sweep jobs. The
 * jobs=1 vs jobs=N ratio is the profiling speedup on this machine;
 * profiles are bit-identical for every N.
 */
void
BM_Fig13ProfileSweep(benchmark::State &state)
{
    const auto jobs = static_cast<std::size_t>(state.range(0));
    std::vector<sim::WorkloadSpec> workloads;
    for (const auto &name : sim::table2FourCoreMixes()[0].members)
        workloads.push_back(sim::workloadByName(name));
    for (auto _ : state) {
        // Fresh runner per iteration: a warm cell cache would turn
        // every iteration after the first into pure lookups.
        sim::SweepRunner runner(sim::PlatformConfig::table1(), 20000,
                                {.jobs = jobs});
        auto sweeps = runner.sweepMany(workloads);
        benchmark::DoNotOptimize(sweeps);
    }
}
BENCHMARK(BM_Fig13ProfileSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 13",
        "weighted system throughput, 4-core mixes WD1-WD5");
    ref::bench::printThroughputComparison(
        ref::sim::table2FourCoreMixes());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
