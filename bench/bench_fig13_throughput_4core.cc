/**
 * @file
 * Figure 13: weighted system throughput for the 4-core mixes WD1-WD5
 * under the four allocation mechanisms of Section 5.5. Expected
 * shape: unfair max welfare on top, REF == fairness-constrained max
 * welfare within a <10% penalty, equal slowdown below the unfair
 * bound.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare_mechanisms.hh"
#include "throughput.hh"

namespace {

using namespace ref;

void
BM_ClosedFormAllocationFourAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2FourCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_ClosedFormAllocationFourAgents);

void
BM_GpSolveFourAgents(benchmark::State &state)
{
    const auto agents = bench::fitAgents(
        sim::table2FourCoreMixes()[0].members, 20000);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto mechanism = core::makeMaxWelfareFair();
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_GpSolveFourAgents)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    ref::bench::printBanner(
        "Figure 13",
        "weighted system throughput, 4-core mixes WD1-WD5");
    ref::bench::printThroughputComparison(
        ref::sim::table2FourCoreMixes());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
