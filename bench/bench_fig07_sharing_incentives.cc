/**
 * @file
 * Figure 7: adding sharing incentives further constrains the fair
 * set. Compares the EF∩PE segment (Figure 6) with the segment that
 * additionally satisfies SI for both users.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "util/table.hh"

namespace {

using namespace ref;

void
printFigure()
{
    bench::printBanner("Figure 7",
                       "sharing incentives shrink the fair set");
    const auto box = bench::paperExampleBox();
    const auto fair = box.fairSegment(false);
    const auto fair_si = box.fairSegment(true);

    Table table({"constraint set", "x1 low (GB/s)", "x1 high (GB/s)",
                 "length"});
    table.addRow({"EF + PE (Fig. 6)", formatFixed(fair.x1Low, 3),
                  formatFixed(fair.x1High, 3),
                  formatFixed(fair.x1High - fair.x1Low, 3)});
    table.addRow({"EF + PE + SI (Fig. 7)",
                  formatFixed(fair_si.x1Low, 3),
                  formatFixed(fair_si.x1High, 3),
                  formatFixed(fair_si.x1High - fair_si.x1Low, 3)});
    table.print(std::cout);

    std::cout << "\nSI boundaries along the contract curve:\n";
    Table boundary({"x1 (GB/s)", "y1 (MB)", "SI both?", "EF both?"});
    for (double x1 = 15.0; x1 <= 21.0; x1 += 0.5) {
        const double y1 = box.contractCurve(x1);
        boundary.addRow(
            {formatFixed(x1, 2), formatFixed(y1, 3),
             box.hasSharingIncentives(x1, y1) ? "yes" : "no",
             box.isEnvyFree(x1, y1) ? "yes" : "no"});
    }
    boundary.print(std::cout);

    std::cout << "\nREF point (18 GB/s, 4 MB) satisfies SI: "
              << (box.hasSharingIncentives(18.0, 4.0) ? "yes" : "NO")
              << "\n";
}

void
BM_FairSegmentWithSi(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        auto segment = box.fairSegment(true);
        benchmark::DoNotOptimize(segment);
    }
}
BENCHMARK(BM_FairSegmentWithSi);

void
BM_SharingIncentivePointTest(benchmark::State &state)
{
    const auto box = bench::paperExampleBox();
    for (auto _ : state) {
        bool si = box.hasSharingIncentives(18.0, 4.0);
        benchmark::DoNotOptimize(si);
    }
}
BENCHMARK(BM_SharingIncentivePointTest);

} // namespace

int
main(int argc, char **argv)
{
    printFigure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
