/**
 * @file
 * Ablation: how the price of fairness scales with population size.
 *
 * Figures 13-14 report <10% penalties at 4 and 8 agents; this
 * harness sweeps the population from 2 to 16 random Cobb-Douglas
 * agents and reports the throughput penalty of the REF point against
 * the TRUE throughput upper bound — the utilitarian optimum, which
 * maximizes sum U_i directly — plus the Nash-product optimum the
 * paper used as its proxy, and equal slowdown's shortfall. Expected
 * shape: the fairness penalty stays bounded while equal slowdown's
 * gap widens (the Figure 14 effect, extrapolated); as a side
 * finding, the Nash proxy falls away from the true bound at scale,
 * justifying the paper's "empirical upper bound" hedge.
 */

#include <iostream>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare.hh"
#include "core/utilitarian.hh"
#include "core/welfare_mechanisms.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ref;

core::AgentList
randomAgents(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    core::AgentList agents;
    for (std::size_t i = 0; i < n; ++i) {
        agents.emplace_back(
            "agent-" + std::to_string(i),
            core::CobbDouglasUtility({rng.uniform(0.05, 1.0),
                                      rng.uniform(0.05, 1.0)}));
    }
    return agents;
}

void
printAblation()
{
    bench::printBanner(
        "Ablation",
        "fairness penalty and equal-slowdown gap vs population size");

    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism proportional;
    const auto nash = core::makeMaxWelfareUnfair();
    const auto slowdown = core::makeEqualSlowdown();
    core::UtilitarianMechanism::Options utilitarian_options;
    utilitarian_options.randomStarts = 3;
    const core::UtilitarianMechanism utilitarian(utilitarian_options);

    Table table({"agents N", "REF", "utilitarian bound",
                 "Nash proxy", "equal slowdown", "fairness penalty",
                 "slowdown gap"});
    for (std::size_t n : {2, 4, 8, 12, 16}) {
        double ref_total = 0, best_total = 0, nash_total = 0,
               slowdown_total = 0;
        constexpr int kSeeds = 2;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
            const auto agents = randomAgents(n, seed * 13);
            ref_total += core::weightedSystemThroughput(
                agents, proportional.allocate(agents, capacity),
                capacity);
            best_total += core::weightedSystemThroughput(
                agents, utilitarian.allocate(agents, capacity),
                capacity);
            nash_total += core::weightedSystemThroughput(
                agents, nash.allocate(agents, capacity), capacity);
            slowdown_total += core::weightedSystemThroughput(
                agents, slowdown.allocate(agents, capacity),
                capacity);
        }
        const double penalty = 1.0 - ref_total / best_total;
        const double gap = 1.0 - slowdown_total / best_total;
        table.addRow({std::to_string(n),
                      formatFixed(ref_total / kSeeds, 3),
                      formatFixed(best_total / kSeeds, 3),
                      formatFixed(nash_total / kSeeds, 3),
                      formatFixed(slowdown_total / kSeeds, 3),
                      formatPercent(penalty, 1),
                      formatPercent(gap, 1)});
    }
    table.print(std::cout);
    std::cout << "\nexpected shape: the REF penalty against the true "
                 "utilitarian bound stays bounded; the equal-slowdown "
                 "gap grows with N (the Figure 14 effect); the Nash "
                 "proxy drifts below the true bound at scale.\n";
}

void
BM_RefSixteenAgents(benchmark::State &state)
{
    const auto agents = randomAgents(16, 5);
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const core::ProportionalElasticityMechanism mechanism;
    for (auto _ : state) {
        auto allocation = mechanism.allocate(agents, capacity);
        benchmark::DoNotOptimize(allocation);
    }
}
BENCHMARK(BM_RefSixteenAgents);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
