#include "common.hh"

#include <iostream>

#include "core/fairness.hh"
#include "core/proportional_elasticity.hh"
#include "core/welfare_mechanisms.hh"
#include "util/table.hh"

namespace ref::bench {

core::EdgeworthBox
paperExampleBox()
{
    return core::EdgeworthBox(
        core::Agent("user1", core::CobbDouglasUtility({0.6, 0.4})),
        core::Agent("user2", core::CobbDouglasUtility({0.2, 0.8})),
        core::SystemCapacity::cacheAndBandwidthExample());
}

core::AgentList
paperExampleAgents()
{
    core::AgentList agents;
    agents.emplace_back("user1", core::CobbDouglasUtility({0.6, 0.4}));
    agents.emplace_back("user2", core::CobbDouglasUtility({0.2, 0.8}));
    return agents;
}

sim::Profiler
defaultProfiler(std::size_t trace_ops, std::size_t jobs)
{
    return sim::Profiler(sim::PlatformConfig::table1(), trace_ops,
                         {.jobs = jobs});
}

core::CobbDouglasFit
fitWorkload(const std::string &name, std::size_t trace_ops)
{
    return defaultProfiler(trace_ops)
        .profileAndFit(sim::workloadByName(name));
}

std::vector<core::CobbDouglasFit>
fitWorkloads(const sim::Profiler &profiler,
             const std::vector<sim::WorkloadSpec> &workloads)
{
    const auto sweeps = profiler.runner().sweepMany(workloads);
    std::vector<core::CobbDouglasFit> fits;
    fits.reserve(sweeps.size());
    for (const auto &points : sweeps)
        fits.push_back(
            core::fitCobbDouglas(sim::toPerformanceProfile(points)));
    return fits;
}

core::AgentList
fitAgents(const sim::Profiler &profiler,
          const std::vector<std::string> &names)
{
    std::vector<sim::WorkloadSpec> workloads;
    workloads.reserve(names.size());
    for (const auto &name : names)
        workloads.push_back(sim::workloadByName(name));

    const auto fits = fitWorkloads(profiler, workloads);
    core::AgentList agents;
    for (std::size_t i = 0; i < names.size(); ++i)
        agents.emplace_back(names[i], fits[i].utility);
    return agents;
}

core::AgentList
fitAgents(const std::vector<std::string> &names, std::size_t trace_ops)
{
    return fitAgents(defaultProfiler(trace_ops), names);
}

void
printBanner(const std::string &figure, const std::string &title)
{
    std::cout << "\n=== " << figure << ": " << title << " ===\n"
              << "    (REF reproduction; see EXPERIMENTS.md for the "
                 "paper-vs-measured record)\n\n";
}

void
printPairComparison(const std::string &workload_a,
                    const std::string &workload_b,
                    std::size_t trace_ops)
{
    const auto capacity =
        core::SystemCapacity::cacheAndBandwidthExample();
    const auto agents = fitAgents({workload_a, workload_b}, trace_ops);

    std::cout << "fitted re-scaled elasticities:\n";
    for (const auto &agent : agents) {
        const auto rescaled = agent.utility().rescaled();
        std::cout << "  " << agent.name() << ": alpha_mem = "
                  << formatFixed(rescaled.elasticity(0), 3)
                  << ", alpha_cache = "
                  << formatFixed(rescaled.elasticity(1), 3) << "\n";
    }
    std::cout << "\n";

    const core::ProportionalElasticityMechanism proportional;
    const auto equal_slowdown = core::makeEqualSlowdown();

    for (const core::AllocationMechanism *mechanism :
         {static_cast<const core::AllocationMechanism *>(
              &equal_slowdown),
          static_cast<const core::AllocationMechanism *>(
              &proportional)}) {
        const auto allocation =
            mechanism->allocate(agents, capacity);
        std::cout << "--- " << mechanism->name() << " ---\n";
        Table table({"agent", "bandwidth (% of total)",
                     "cache (% of total)"});
        for (std::size_t i = 0; i < agents.size(); ++i) {
            const auto fractions =
                allocation.fractions(i, capacity);
            table.addRow({agents[i].name(),
                          formatPercent(fractions[0], 1),
                          formatPercent(fractions[1], 1)});
        }
        table.print(std::cout);

        core::FairnessTolerance tol;
        tol.utility = 1e-4;
        tol.mrs = 1e-2;
        tol.capacity = 1e-6;
        const auto report =
            core::checkFairness(agents, capacity, allocation, tol);
        std::cout << "SI: "
                  << (report.sharingIncentives.satisfied
                          ? "satisfied"
                          : "VIOLATED (" +
                                report.sharingIncentives.binding + ")")
                  << "\nEF: "
                  << (report.envyFreeness.satisfied
                          ? "satisfied"
                          : "VIOLATED (" +
                                report.envyFreeness.binding + ")")
                  << "\nPE: "
                  << (report.paretoEfficiency.satisfied ? "satisfied"
                                                        : "violated")
                  << "\n\n";
    }
}

} // namespace ref::bench
