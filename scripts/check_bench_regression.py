#!/usr/bin/env python3
"""Gate a bench run against a committed baseline.

Compares BENCH-schema records (see export_bench_timings.py) by name:
a record regresses when its throughput (``ops_per_sec``, or the
inverse of ``wall_ns`` when absent) falls more than ``--tolerance``
below the baseline's. Also enforces architecture-level speedup
claims: ``--min-speedup SLOW:FAST:X`` fails unless the record named
FAST delivers at least X times the throughput of the record named
SLOW, both read from the current file.

Exit status: 0 clean, 1 on any regression or unmet speedup, 2 on
malformed inputs. Baselines move with intentional changes: regenerate
the committed BENCH files in the same PR and note why (CI documents
the override label for drive-by regressions).

Usage:
  check_bench_regression.py --baseline OLD.json --current NEW.json
      [--tolerance 0.25] [--min-speedup slow_name:fast_name:2.0]...
"""

import argparse
import json
import pathlib
import sys


def load_records(path):
    doc = json.loads(pathlib.Path(path).read_text())
    records = doc if isinstance(doc, list) else [doc]
    by_name = {}
    for record in records:
        by_name[record["name"]] = record
    return by_name


def throughput(record):
    """Ops/sec for comparison; derived from wall_ns when absent."""
    if "ops_per_sec" in record:
        return float(record["ops_per_sec"])
    wall = float(record["wall_ns"])
    if wall <= 0:
        raise ValueError(f"record '{record['name']}' has wall_ns "
                         f"{wall}; cannot derive throughput")
    return 1e9 / wall


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH file to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH file")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop "
                             "(default: 0.25)")
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="SLOW:FAST:X",
                        help="require current[FAST] >= X * "
                             "current[SLOW] in throughput")
    args = parser.parse_args(argv)

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: unreadable bench file: {exc}", file=sys.stderr)
        return 2

    failures = []
    for name, old in sorted(baseline.items()):
        new = current.get(name)
        if new is None:
            failures.append(f"'{name}' present in baseline but "
                            "missing from current run")
            continue
        old_tput = throughput(old)
        new_tput = throughput(new)
        floor = old_tput * (1.0 - args.tolerance)
        verdict = "ok" if new_tput >= floor else "REGRESSION"
        print(f"{name}: baseline {old_tput:.0f} ops/s, current "
              f"{new_tput:.0f} ops/s "
              f"({new_tput / old_tput - 1.0:+.1%} vs baseline) "
              f"[{verdict}]")
        if new_tput < floor:
            failures.append(
                f"'{name}' dropped to {new_tput:.0f} ops/s, below "
                f"the {args.tolerance:.0%}-tolerance floor of "
                f"{floor:.0f}")

    for spec in args.min_speedup:
        try:
            slow_name, fast_name, factor_text = spec.rsplit(":", 2)
            factor = float(factor_text)
            slow = throughput(current[slow_name])
            fast = throughput(current[fast_name])
        except (ValueError, KeyError) as exc:
            print(f"error: bad --min-speedup '{spec}': {exc}",
                  file=sys.stderr)
            return 2
        achieved = fast / slow if slow > 0 else float("inf")
        verdict = "ok" if achieved >= factor else "UNMET"
        print(f"speedup {fast_name} vs {slow_name}: {achieved:.2f}x "
              f"(need {factor:.2f}x) [{verdict}]")
        if achieved < factor:
            failures.append(
                f"'{fast_name}' is only {achieved:.2f}x "
                f"'{slow_name}' (need {factor:.2f}x)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
