#!/usr/bin/env bash
# Strategy-proofness sweep: ref_adversary drives one live ref_serve
# through population sizes N with K strategic clients each, producing
# one BENCH artifact in out_dir:
#
#   BENCH_strategyproofness.json   one record per N (gain-from-lying
#                                  ratio, utilization loss, honest
#                                  cohort SI/EF margins)
#
# Records are BENCH-schema (export_bench_timings.py --check) with
# deterministic measurements: wall_ns counts epochs consumed, not
# wall-clock, so the committed baseline is byte-reproducible and the
# regression gate tracks convergence cost. The run then feeds
# check_strategyproofness.py, which enforces the paper's SPL claim:
# gain >= 1 everywhere, decaying toward 1 as N grows, honest SI
# margins never below 1.
set -u

usage="usage: bench_strategy.sh <ref_serve> <ref_adversary> <workdir> \
[sweep] [liars] [seed] [out_dir]"
REF_SERVE=${1:?$usage}
REF_ADVERSARY=${2:?$usage}
WORKDIR=${3:?$usage}
SWEEP=${4:-2,4,8,16,32,64,128,256,512,1024}
LIARS=${5:-1}
SEED=${6:-42}
OUT_DIR=${7:-$WORKDIR}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR" "$OUT_DIR"
SRV=

fail() {
    echo "FAIL: $1" >&2
    tail -20 "$WORKDIR"/server*.err >&2 2>/dev/null || true
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
    exit 1
}

# One self-checking server hosts the whole sweep (the fleet departs
# its agents between steps). --strict makes any slipped ERR or failed
# SI/EF/selfcheck epoch a non-zero exit below.
"$REF_SERVE" --capacity 24,12 --selfcheck --strict \
    --listen 127.0.0.1:0 \
    > "$WORKDIR/server.out" 2> "$WORKDIR/server.err" &
SRV=$!
PORT=
for _ in $(seq 1 100); do
    PORT=$(sed -n \
        's/^LISTENING .*addr=[^ ]*:\([0-9][0-9]*\).*$/\1/p' \
        "$WORKDIR/server.err" 2>/dev/null)
    [ -n "$PORT" ] && break
    kill -0 "$SRV" 2>/dev/null || fail "server died on startup"
    sleep 0.05
done
[ -n "$PORT" ] || fail "no LISTENING line in server.err"

"$REF_ADVERSARY" --connect "127.0.0.1:$PORT" --sweep "$SWEEP" \
    --liars "$LIARS" --seed "$SEED" \
    > "$WORKDIR/strategy_records.jsonl" \
    2> "$WORKDIR/adversary.err" ||
    fail "ref_adversary sweep failed"

# Graceful shutdown so --strict verdicts surface as the exit code.
exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "control connect failed"
printf 'SHUTDOWN\n' >&3
cat <&3 >/dev/null
exec 3<&- 3>&-
wait "$SRV" || fail "server exited non-zero (strict violation?)"
SRV=

python3 - "$WORKDIR/strategy_records.jsonl" \
    "$OUT_DIR/BENCH_strategyproofness.json" <<'EOF' ||
import json, sys
records = [json.loads(line)
           for line in open(sys.argv[1]) if line.strip()]
if not records:
    sys.exit("no records produced")
with open(sys.argv[2], "w") as out:
    out.write(json.dumps(records, indent=2) + "\n")
EOF
    fail "could not assemble strategy records"

SCRIPTS_DIR=$(cd "$(dirname "$0")" && pwd)
python3 "$SCRIPTS_DIR/export_bench_timings.py" --check \
    "$OUT_DIR/BENCH_strategyproofness.json" ||
    fail "generated BENCH file does not conform to the schema"
python3 "$SCRIPTS_DIR/check_strategyproofness.py" \
    "$OUT_DIR/BENCH_strategyproofness.json" ||
    fail "strategy-proofness properties violated"

echo "ok: $OUT_DIR/BENCH_strategyproofness.json" \
    "(sweep $SWEEP, liars $LIARS, seed $SEED)"
