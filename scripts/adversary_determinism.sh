#!/usr/bin/env bash
# Transcript determinism for the strategic fleet: the same seed must
# produce byte-identical ref_adversary stdout across the text and
# binary framings and across server shard counts (1 and 4). That is
# the contract that makes the committed strategy-proofness bench
# reproducible: elasticities are a pure function of (seed, index),
# QUERY reads the published epoch snapshot, and the mechanism's
# allocation is order-independent, so nothing about transport or
# shard interleaving may leak into the measurement.
set -u

REF_SERVE=${1:?usage: adversary_determinism.sh <ref_serve> <ref_adversary> <workdir> [sweep] [seed]}
REF_ADVERSARY=${2:?usage: adversary_determinism.sh <ref_serve> <ref_adversary> <workdir> [sweep] [seed]}
WORKDIR=${3:?usage: adversary_determinism.sh <ref_serve> <ref_adversary> <workdir> [sweep] [seed]}
SWEEP=${4:-2,4,8,16,32}
SEED=${5:-42}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SRV=

fail() {
    echo "FAIL: $1" >&2
    echo "--- server stderr ---" >&2
    tail -20 "$WORKDIR"/server*.err >&2 2>/dev/null || true
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
    exit 1
}

start_server() {
    # $1: shard count, $2: stderr log name.
    "$REF_SERVE" --capacity 24,12 --selfcheck --strict \
        --listen 127.0.0.1:0 --shards "$1" \
        > "$WORKDIR/server.out" 2> "$WORKDIR/$2" &
    SRV=$!
    PORT=
    for _ in $(seq 1 100); do
        PORT=$(sed -n \
            's/^LISTENING .*addr=[^ ]*:\([0-9][0-9]*\).*$/\1/p' \
            "$WORKDIR/$2" 2>/dev/null)
        [ -n "$PORT" ] && break
        kill -0 "$SRV" 2>/dev/null || fail "server died on startup"
        sleep 0.05
    done
    [ -n "$PORT" ] || fail "no LISTENING line in $2"
}

stop_server() {
    kill "$SRV" 2>/dev/null
    wait "$SRV" 2>/dev/null
    SRV=
}

run_fleet() {
    # $1: output name, $2...: extra ref_adversary flags.
    local out=$1
    shift
    "$REF_ADVERSARY" --connect "127.0.0.1:$PORT" \
        --sweep "$SWEEP" --liars 1 --seed "$SEED" "$@" \
        > "$WORKDIR/$out" 2>> "$WORKDIR/adversary.err" ||
        fail "ref_adversary failed for $out"
}

# One server per shard count; both framings share each server (the
# fleet departs its agents, so runs are independent).
start_server 1 server1.err
run_fleet text_1shard.json
run_fleet binary_1shard.json --binary
stop_server

start_server 4 server4.err
run_fleet text_4shard.json
run_fleet binary_4shard.json --binary
stop_server

for variant in binary_1shard text_4shard binary_4shard; do
    cmp -s "$WORKDIR/text_1shard.json" "$WORKDIR/$variant.json" ||
        fail "$variant.json differs from text_1shard.json"
done

RECORDS=$(wc -l < "$WORKDIR/text_1shard.json")
EXPECTED=$(echo "$SWEEP" | tr ',' '\n' | wc -l)
[ "$RECORDS" -eq "$EXPECTED" ] ||
    fail "expected $EXPECTED records, got $RECORDS"

echo "ok: $RECORDS records byte-identical across" \
    "text/binary x 1/4 shards (sweep $SWEEP, seed $SEED)"
