#!/usr/bin/env bash
# Pool-tree scale benchmark: ref_bomb preloads a large pooled
# population into ref_serve --pooled, then measures an UPDATE/TICK/
# QUERY mix (no measured churn) so the TICK percentiles isolate
# epoch cost against a big stable tree. Two populations — SMALL and
# BIG (default 10k and 100k agents) — produce one artifact:
#
#   BENCH_pool_scale.json   [pool_scale_P<SMALL>, pool_scale_P<BIG>]
#
# Records carry the pooled extensions (agents, pools, tick_p50_ns,
# tick_p99_ns). The headline property is that tick_p99_ns grows
# sublinearly in the population: a pooled TICK re-aggregates only
# changed root-to-leaf paths, so 10x the agents must cost well under
# 10x the TICK tail. The script prints the measured ratio and fails
# if the BIG population's TICK p99 scales at or above linear.
set -u

usage="usage: bench_pool_scale.sh <ref_serve> <ref_bomb> <workdir> \
[small] [big] [pools] [ops_per_conn] [out_dir]"
REF_SERVE=${1:?$usage}
REF_BOMB=${2:?$usage}
WORKDIR=${3:?$usage}
SMALL=${4:-10000}
BIG=${5:-100000}
POOLS=${6:-64}
OPS=${7:-2000}
OUT_DIR=${8:-$WORKDIR}
CONNECTIONS=2

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR" "$OUT_DIR"
SRV=

fail() {
    echo "FAIL: $1" >&2
    tail -20 "$WORKDIR"/server*.err >&2 2>/dev/null || true
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
    exit 1
}

start_server() {
    # $1: stderr log name. One event-loop shard: the run measures
    # tree cost, not transport fan-out (bench_socket.sh covers that).
    "$REF_SERVE" --capacity 24,12 --pooled --listen 127.0.0.1:0 \
        --shards 1 --max-clients 16 \
        > "$WORKDIR/server.out" 2> "$WORKDIR/$1" &
    SRV=$!
    PORT=
    for _ in $(seq 1 100); do
        PORT=$(sed -n \
            's/^LISTENING .*addr=[^ ]*:\([0-9][0-9]*\).*$/\1/p' \
            "$WORKDIR/$1" 2>/dev/null)
        [ -n "$PORT" ] && break
        kill -0 "$SRV" 2>/dev/null || fail "server died on startup"
        sleep 0.05
    done
    [ -n "$PORT" ] || fail "no LISTENING line in $1"
}

stop_server() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "control connect failed"
    printf 'SHUTDOWN\n' >&3
    cat <&3 >/dev/null
    exec 3<&- 3>&-
    wait "$SRV" || fail "server exited non-zero after SHUTDOWN"
    SRV=
}

# Measured mix: UPDATE : TICK : QUERY = 4:2:4, no ADMIT/DEPART — the
# preloaded population is the fixture, churn would blur what a TICK
# costs at that size. Zipf pool skew: a realistic tree has hot pools,
# and skew maximises the deepest per-TICK re-aggregation paths.
MIX=0:4:0:2:4

one_run() {
    # $1: population, fresh server per size (binary framing: the
    # preload pushes 2x population commands through the socket).
    local population=$1
    local preload=$((population / CONNECTIONS))
    start_server "server_P$population.err"
    "$REF_BOMB" --connect "127.0.0.1:$PORT" \
        --name "pool_scale_P$population" \
        --connections "$CONNECTIONS" --ops "$OPS" --seed 42 \
        --binary --mode closed --window 8 --mix "$MIX" \
        --pools "$POOLS" --pool-skew zipf --preload "$preload" \
        > "$WORKDIR/pool_scale_P$population.json" \
        2>> "$WORKDIR/bomb.err" ||
        fail "ref_bomb run P=$population failed"
    stop_server
}

one_run "$SMALL"
one_run "$BIG"

python3 - "$OUT_DIR/BENCH_pool_scale.json" \
    "$WORKDIR/pool_scale_P$SMALL.json" \
    "$WORKDIR/pool_scale_P$BIG.json" <<'EOF' ||
import json, sys
records = [json.loads(open(path).read()) for path in sys.argv[2:]]
small, big = records
ratio_pop = big["agents"] / small["agents"]
ratio_p99 = big["tick_p99_ns"] / max(1, small["tick_p99_ns"])
print(f"pool scale: {small['agents']} -> {big['agents']} agents "
      f"({ratio_pop:.1f}x), TICK p99 {small['tick_p99_ns']} -> "
      f"{big['tick_p99_ns']} ns ({ratio_p99:.2f}x)")
if ratio_p99 >= ratio_pop:
    sys.exit(f"TICK p99 scaled at/above linear ({ratio_p99:.2f}x "
             f"for {ratio_pop:.1f}x agents)")
with open(sys.argv[1], "w") as out:
    out.write(json.dumps(records, indent=2) + "\n")
EOF
    fail "TICK latency did not scale sublinearly"

SCRIPTS_DIR=$(cd "$(dirname "$0")" && pwd)
python3 "$SCRIPTS_DIR/export_bench_timings.py" --check \
    "$OUT_DIR/BENCH_pool_scale.json" ||
    fail "generated BENCH file does not conform to the schema"

echo "ok: $OUT_DIR/BENCH_pool_scale.json" \
    "(populations $SMALL and $BIG, $POOLS pools, $OPS ops/conn)"
