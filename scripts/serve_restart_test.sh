#!/usr/bin/env bash
# End-to-end crash recovery through the real binary: seed a journal,
# kill the process mid-append with an injected fault (REF_FAILPOINTS
# exit action), then restart on the same directory and verify the
# recovered state serves queries with the self-check on.
set -u

REF_SERVE=${1:?usage: serve_restart_test.sh <ref_serve> <workdir>}
WORKDIR=${2:?usage: serve_restart_test.sh <ref_serve> <workdir>}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
JOURNAL="$WORKDIR/journal"

fail() {
    echo "FAIL: $1" >&2
    for log in run1 run2 run3; do
        echo "--- $log stderr ---" >&2
        cat "$WORKDIR/$log.err" >&2 2>/dev/null || true
    done
    exit 1
}

# 1. Seed: two agents and one epoch, journaled and cleanly flushed.
printf 'ADMIT user1 0.6 0.4\nADMIT user2 0.2 0.8\nTICK\n' |
    "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
        > "$WORKDIR/run1.out" 2> "$WORKDIR/run1.err"
[ $? -eq 0 ] || fail "seed run failed"
grep -q 'recovery: outcome=fresh' "$WORKDIR/run1.err" ||
    fail "seed run did not start fresh"

# 2. Crash: the exit failpoint kills the process half way through a
#    journal append (torn frame on disk). skip=1 lets the recovery
#    compaction's Begin frame through, so the crash lands on the
#    first command's append.
printf 'TICK\nADMIT user3 0.5 0.5\nTICK\n' |
    REF_FAILPOINTS='journal.write=exit@1' \
    "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
        > "$WORKDIR/run2.out" 2> "$WORKDIR/run2.err"
STATUS=$?
[ "$STATUS" -eq 137 ] || fail "expected injected exit 137, got $STATUS"

# 3. Recover: the restarted server must come back with both seeded
#    agents, continue the epoch sequence, and pass the allocation
#    self-check in strict mode.
printf 'TICK\nQUERY\nPLAN\n' |
    "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
        --selfcheck --strict \
        > "$WORKDIR/run3.out" 2> "$WORKDIR/run3.err"
[ $? -eq 0 ] || fail "recovered run failed strict checks"
grep -q 'recovery: outcome=' "$WORKDIR/run3.err" ||
    fail "missing recovery summary"
grep -q ' agents=2' "$WORKDIR/run3.err" ||
    fail "recovery did not restore both agents"
grep -q 'SHARE user2 6 8' "$WORKDIR/run3.out" ||
    fail "recovered allocation is not bit-identical"
grep -q 'selfcheck=ok' "$WORKDIR/run3.out" ||
    fail "recovered epoch failed the self-check"

echo "ok: injected crash recovered bit-identically"
