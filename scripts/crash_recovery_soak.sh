#!/usr/bin/env bash
# Crash-recovery soak: repeatedly kill -9 a journaled ref_serve in
# the middle of live churn, restart it on the same journal, and
# require the recovered server to pass a strict self-checked epoch.
# Every iteration uses fresh agent names so state accumulates across
# kills exactly as it would for a long-lived deployment.
set -u

REF_SERVE=${1:?usage: crash_recovery_soak.sh <ref_serve> <workdir> [iterations]}
WORKDIR=${2:?usage: crash_recovery_soak.sh <ref_serve> <workdir> [iterations]}
ITERATIONS=${3:-20}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
JOURNAL="$WORKDIR/journal"

fail() {
    echo "FAIL (iteration $i): $1" >&2
    echo "--- churn stderr ---" >&2
    cat "$WORKDIR/churn.err" >&2 2>/dev/null || true
    echo "--- verify stderr ---" >&2
    cat "$WORKDIR/verify.err" >&2 2>/dev/null || true
    exit 1
}

feed_churn() {
    # Endless churn, slowly, so kill -9 lands mid-session. Unique
    # names per iteration keep replayed ADMITs collision-free.
    local iter=$1 j=0
    while :; do
        j=$((j + 1))
        echo "ADMIT soak_${iter}_${j} 0.6 0.4"
        echo "TICK"
        if [ $((j % 3)) -eq 0 ]; then
            echo "DEPART soak_${iter}_${j}"
        fi
        sleep 0.002
    done
}

for ((i = 1; i <= ITERATIONS; ++i)); do
    feed_churn "$i" 2>/dev/null |
        "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
            > /dev/null 2> "$WORKDIR/churn.err" &
    SERVER=$!  # Last element of the pipeline: ref_serve itself.

    # Let some churn through, then kill without warning.
    sleep "0.0$((RANDOM % 8 + 1))$((RANDOM % 10))"
    kill -9 "$SERVER" 2>/dev/null
    wait "$SERVER" 2>/dev/null

    printf 'TICK\nQUERY\nSTATS\n' |
        "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
            --selfcheck --strict \
            > "$WORKDIR/verify.out" 2> "$WORKDIR/verify.err"
    [ $? -eq 0 ] || fail "restart failed strict verification"
    grep -q 'recovery: outcome=' "$WORKDIR/verify.err" ||
        fail "missing recovery summary"
    grep -Eq 'recovery: outcome=(clean|truncated-tail|discarded-wal|fresh)' \
        "$WORKDIR/verify.err" || fail "unexpected recovery outcome"
    grep -q 'selfcheck=ok' "$WORKDIR/verify.out" ||
        fail "recovered epoch failed the self-check"

    outcome=$(grep -o 'recovery: outcome=[a-z-]*' "$WORKDIR/verify.err")
    echo "iteration $i/$ITERATIONS: $outcome"
done

echo "ok: $ITERATIONS kill -9 + restart cycles recovered cleanly"
