#!/usr/bin/env bash
# Socket transport benchmark matrix: ref_bomb drives ref_serve over
# {text, binary} x {1, N} shards on loopback, producing two BENCH
# artifacts in --out-dir:
#
#   BENCH_socket_throughput.json  closed-loop runs (max throughput)
#   BENCH_socket_latency.json     open-loop runs at a fixed rate
#                                 (coordinated-omission-free tails)
#
# Both are arrays of BENCH-schema records (name, wall_ns, iterations,
# ops_per_sec, p50/p90/p99_ns) so export_bench_timings.py --check
# validates them and check_bench_regression.py can gate on them.
set -u

usage="usage: bench_socket.sh <ref_serve> <ref_bomb> <workdir> \
[shards] [connections] [ops_per_conn] [out_dir]"
REF_SERVE=${1:?$usage}
REF_BOMB=${2:?$usage}
WORKDIR=${3:?$usage}
SHARDS=${4:-4}
CONNECTIONS=${5:-8}
OPS=${6:-4000}
OUT_DIR=${7:-$WORKDIR}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR" "$OUT_DIR"
SRV=

fail() {
    echo "FAIL: $1" >&2
    tail -20 "$WORKDIR"/server*.err >&2 2>/dev/null || true
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
    exit 1
}

start_server() {
    # $1: shard count, $2: stderr log name.
    "$REF_SERVE" --capacity 24,12 --listen 127.0.0.1:0 \
        --shards "$1" --max-clients 64 \
        > "$WORKDIR/server.out" 2> "$WORKDIR/$2" &
    SRV=$!
    PORT=
    for _ in $(seq 1 100); do
        PORT=$(sed -n \
            's/^LISTENING .*addr=[^ ]*:\([0-9][0-9]*\).*$/\1/p' \
            "$WORKDIR/$2" 2>/dev/null)
        [ -n "$PORT" ] && break
        kill -0 "$SRV" 2>/dev/null || fail "server died on startup"
        sleep 0.05
    done
    [ -n "$PORT" ] || fail "no LISTENING line in $2"
}

stop_server() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "control connect failed"
    printf 'SHUTDOWN\n' >&3
    cat <&3 >/dev/null
    exec 3<&- 3>&-
    wait "$SRV" || fail "server exited non-zero after SHUTDOWN"
    SRV=
}

bomb() {
    # $1: record name, $2: output file, then extra ref_bomb flags.
    local name=$1 out=$2
    shift 2
    "$REF_BOMB" --connect "127.0.0.1:$PORT" --name "$name" \
        --connections "$CONNECTIONS" --ops "$OPS" --seed 42 "$@" \
        > "$out" 2>> "$WORKDIR/bomb.err" ||
        fail "ref_bomb run '$name' failed"
}

# Open-loop rate: modest enough to be sustainable in every
# configuration even on a small single-core runner (closed-loop
# capacity there is ~1.8k ops/s), so the percentiles measure queueing
# behaviour rather than saturation collapse.
RATE=$((CONNECTIONS * 150))

# Transport-focused mix: mostly UPDATE/QUERY round-trips with a
# trickle of epochs, so the numbers compare framing + event-loop cost
# rather than solver time (which grows with accumulated agents and
# would swamp the transport signal).
MIX=3:4:1:1:7

one_run() {
    # Each measurement gets a fresh server: accumulated agents make
    # later epochs costlier, which would bias whichever configuration
    # runs last.
    local shards=$1 name=$2 out=$3
    shift 3
    start_server "$shards" "server_$name.err"
    bomb "$name" "$out" --mix "$MIX" "$@"
    stop_server
}

run_matrix() {
    # $1: shard count, $2: record suffix.
    one_run "$1" "socket_text_$2" "$WORKDIR/tput_text_$2.json" \
        --mode closed --window 8
    one_run "$1" "socket_binary_$2" "$WORKDIR/tput_binary_$2.json" \
        --mode closed --window 8 --binary
    one_run "$1" "socket_latency_text_$2" \
        "$WORKDIR/lat_text_$2.json" --mode open --rate "$RATE"
    one_run "$1" "socket_latency_binary_$2" \
        "$WORKDIR/lat_binary_$2.json" --mode open --rate "$RATE" \
        --binary
}

run_matrix 1 1shard
run_matrix "$SHARDS" "${SHARDS}shard"

join_records() {
    # Join one-record JSON files into a pretty-printed array.
    python3 - "$@" <<'EOF'
import json, sys
records = [json.loads(open(path).read()) for path in sys.argv[2:]]
with open(sys.argv[1], "w") as out:
    out.write(json.dumps(records, indent=2) + "\n")
EOF
}

join_records "$OUT_DIR/BENCH_socket_throughput.json" \
    "$WORKDIR/tput_text_1shard.json" \
    "$WORKDIR/tput_binary_1shard.json" \
    "$WORKDIR/tput_text_${SHARDS}shard.json" \
    "$WORKDIR/tput_binary_${SHARDS}shard.json" ||
    fail "could not assemble throughput records"
join_records "$OUT_DIR/BENCH_socket_latency.json" \
    "$WORKDIR/lat_text_1shard.json" \
    "$WORKDIR/lat_binary_1shard.json" \
    "$WORKDIR/lat_text_${SHARDS}shard.json" \
    "$WORKDIR/lat_binary_${SHARDS}shard.json" ||
    fail "could not assemble latency records"

SCRIPTS_DIR=$(cd "$(dirname "$0")" && pwd)
python3 "$SCRIPTS_DIR/export_bench_timings.py" --check \
    "$OUT_DIR/BENCH_socket_throughput.json" \
    "$OUT_DIR/BENCH_socket_latency.json" ||
    fail "generated BENCH files do not conform to the schema"

echo "ok: $OUT_DIR/BENCH_socket_throughput.json and" \
    "$OUT_DIR/BENCH_socket_latency.json" \
    "($CONNECTIONS connections, $OPS ops/conn, shards 1 and $SHARDS)"
