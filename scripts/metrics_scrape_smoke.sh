#!/usr/bin/env bash
# Telemetry scrape smoke: run a short journaled ref_serve session
# with every exporter on, then assert the whole observability surface
# holds together — the Prometheus exposition parses, the JSON
# exposition parses, METRICS agrees with STATS, the fairness CSV has
# one row per epoch with SI/EF margins >= 1, and the Chrome trace
# loads as JSON with the expected span names.
set -u

REF_SERVE=${1:?usage: metrics_scrape_smoke.sh <ref_serve> <workdir> [epochs]}
WORKDIR=${2:?usage: metrics_scrape_smoke.sh <ref_serve> <workdir> [epochs]}
EPOCHS=${3:-120}

PYTHON=${PYTHON:-python3}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

fail() {
    echo "FAIL: $1" >&2
    echo "--- stderr ---" >&2
    cat "$WORKDIR/serve.err" >&2 2>/dev/null || true
    exit 1
}

# The paper's worked example, soaked for $EPOCHS epochs with mild
# churn in the middle so the drift column moves at least once.
{
    printf 'ADMIT user1 0.6 0.4\n'
    printf 'ADMIT user2 0.2 0.8\n'
    printf 'TICK %d\n' "$((EPOCHS / 2))"
    printf 'ADMIT user3 0.5 0.5\n'
    printf 'TICK %d\n' "$((EPOCHS - EPOCHS / 2))"
    printf 'STATS\n'
    printf 'METRICS\n'
    printf 'METRICS json\n'
    printf 'SHUTDOWN\n'
} > "$WORKDIR/session.txt"

"$REF_SERVE" --capacity 24,12 --selfcheck --strict \
    --file "$WORKDIR/session.txt" \
    --journal "$WORKDIR/journal" \
    --metrics-out "$WORKDIR/metrics.prom" \
    --fairness-out "$WORKDIR/fairness.csv" \
    --trace-out "$WORKDIR/trace.json" \
    > "$WORKDIR/session.out" 2> "$WORKDIR/serve.err" \
    || fail "ref_serve exited non-zero"

for f in metrics.prom fairness.csv trace.json; do
    [ -s "$WORKDIR/$f" ] || fail "$f missing or empty"
done

# One pass over everything that must parse. The inline METRICS
# expositions are cross-checked against STATS (one source of truth)
# and the --metrics-out file against the session transcript.
"$PYTHON" - "$WORKDIR" "$EPOCHS" <<'EOF' || fail "telemetry validation failed"
import json, re, sys

workdir, epochs = sys.argv[1], int(sys.argv[2])
out = open(f"{workdir}/session.out").read()

# STATS: key=value lines.
stats = dict(m.groups() for m in re.finditer(r"^(\w+)=(\S+)$", out, re.M))
assert int(stats["epochs"]) == epochs, stats["epochs"]

# Prometheus exposition (both inline and the --metrics-out file):
# every non-comment line must be `name[{labels}] value`.
prom_line = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9].*$|^#.*$")
def parse_prom(text):
    values = {}
    for line in text.splitlines():
        if not line:
            continue
        assert prom_line.match(line), f"bad prometheus line: {line!r}"
        if not line.startswith("#"):
            name, value = line.rsplit(" ", 1)
            values[name] = value
    return values

inline = parse_prom(out[out.index("# HELP"):out.index("{\"counters\"")])
scraped = parse_prom(open(f"{workdir}/metrics.prom").read())
for values in (inline, scraped):
    assert float(values["ref_epochs_total"]) == epochs
    assert float(values["ref_admits_total"]) == 3
    assert float(values["ref_journal_enabled"]) == 1
    assert float(values["ref_fairness_si_margin"]) >= 1.0
    assert float(values["ref_fairness_ef_margin"]) >= 1.0
# METRICS and STATS must agree — they read the same registry.
for stat, metric in [
    ("epochs", "ref_epochs_total"),
    ("admits", "ref_admits_total"),
    ("journal_records", "ref_journal_records"),
    ("recovery_generation", "ref_recovery_generation"),
]:
    assert float(stats[stat]) == float(inline[metric]), (stat, metric)

# JSON exposition.
doc = json.loads(out[out.index("{\"counters\""):].splitlines()[0])
assert doc["counters"]["ref_epochs_total"] == epochs
assert doc["histograms"]["ref_epoch_latency_ns"]["count"] == epochs

# Fairness series: header + one row per epoch, margins >= 1.
rows = open(f"{workdir}/fairness.csv").read().splitlines()
header = rows[0].split(",")
assert header[0] == "epoch" and len(rows) == 1 + epochs, len(rows)
si, ef = header.index("si_margin"), header.index("ef_margin")
for row in rows[1:]:
    cells = row.split(",")
    assert float(cells[si]) >= 1.0 and float(cells[ef]) >= 1.0, row

# Chrome trace: valid JSON, complete events, expected span names.
trace = json.load(open(f"{workdir}/trace.json"))
names = {e["name"] for e in trace["traceEvents"]}
for expected in ("epoch.tick", "cmd.tick", "cmd.metrics",
                 "journal.append", "journal.fsync"):
    assert expected in names, (expected, names)
assert all(e["ph"] == "X" for e in trace["traceEvents"])
print(f"ok: {epochs} epochs, {len(trace['traceEvents'])} spans, "
      f"si_margin={inline['ref_fairness_si_margin']} "
      f"ef_margin={inline['ref_fairness_ef_margin']}")
EOF

echo "PASS: telemetry scrape smoke ($EPOCHS epochs) in $WORKDIR"
