#!/usr/bin/env bash
# Socket front-end soak: N concurrent TCP clients churn agents and
# drive epochs against one journaled ref_serve, the server is killed
# with -9 mid-run and restarted on the same journal, the clients
# reconnect, and the run must end with a strict self-checked epoch, a
# parseable Prometheus scrape of the ref_net_* series, and zero
# leaked fds (the server's fd table returns to its post-accept
# baseline once every client disconnects).
set -u

REF_SERVE=${1:?usage: serve_socket_soak.sh <ref_serve> <workdir> [epochs] [clients]}
WORKDIR=${2:?usage: serve_socket_soak.sh <ref_serve> <workdir> [epochs] [clients]}
EPOCHS=${3:-120}
CLIENTS=${4:-8}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
JOURNAL="$WORKDIR/journal"
# Epochs split across two phases (before and after the kill), spread
# over the clients; the post-restart phase is never interrupted, so
# at least half the budget is guaranteed to land.
TICKS_PER_CLIENT=$(((EPOCHS + 2 * CLIENTS - 1) / (2 * CLIENTS)))

fail() {
    echo "FAIL: $1" >&2
    echo "--- server stderr ---" >&2
    tail -40 "$WORKDIR"/server*.err >&2 2>/dev/null || true
    kill -9 "$SRV" 2>/dev/null
    exit 1
}

start_server() {
    # $1: stderr log name. Port 0 = ephemeral, announced on stderr.
    "$REF_SERVE" --capacity 24,12 --journal "$JOURNAL" \
        --selfcheck --listen 127.0.0.1:0 --max-clients 32 \
        > "$WORKDIR/server.out" 2> "$WORKDIR/$1" &
    SRV=$!
    PORT=
    for _ in $(seq 1 100); do
        PORT=$(sed -n \
            's/^LISTENING .*addr=[^ ]*:\([0-9][0-9]*\).*$/\1/p' \
            "$WORKDIR/$1" 2>/dev/null)
        [ -n "$PORT" ] && break
        kill -0 "$SRV" 2>/dev/null || fail "server died on startup"
        sleep 0.05
    done
    [ -n "$PORT" ] || fail "no LISTENING line in $1"
}

drive_client() {
    # $1: phase tag, $2: client id. Lock-step (send one command,
    # read its one reply line) so a dead server surfaces as a failed
    # read, not a hang.
    local phase=$1 id=$2 j
    exec 3<>"/dev/tcp/127.0.0.1/$PORT" || return 1
    for ((j = 1; j <= TICKS_PER_CLIENT; ++j)); do
        printf 'ADMIT %s_c%s_%s 0.6 0.4\n' "$phase" "$id" "$j" >&3 \
            || return 1
        read -r _ <&3 || return 1
        printf 'TICK\n' >&3 || return 1
        read -r _ <&3 || return 1
        if [ $((j % 3)) -eq 0 ]; then
            printf 'DEPART %s_c%s_%s\n' "$phase" "$id" "$j" >&3 \
                || return 1
            read -r _ <&3 || return 1
        fi
    done
    exec 3<&- 3>&-
    return 0
}

run_phase() {
    # $1: phase tag, $2: 1 if client failures are tolerated (the
    # phase the kill -9 lands in).
    local phase=$1 tolerate=$2 pids=() id ok=0
    for ((id = 1; id <= CLIENTS; ++id)); do
        drive_client "$phase" "$id" &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        wait "$pid" && ok=$((ok + 1))
    done
    if [ "$tolerate" -eq 0 ] && [ "$ok" -ne "$CLIENTS" ]; then
        fail "$phase: only $ok/$CLIENTS clients finished cleanly"
    fi
}

fd_count() {
    ls "/proc/$SRV/fd" 2>/dev/null | wc -l
}

# --- Phase 1: concurrent churn, then kill -9 mid-run. ---
start_server server1.err
run_phase pre 1 &
PHASE=$!
sleep 0.4  # Let churn land so the kill interrupts a live stream.
kill -9 "$SRV" 2>/dev/null || fail "server already gone before kill"
wait "$SRV" 2>/dev/null
wait "$PHASE" 2>/dev/null

# --- Phase 2: restart on the same journal, reconnect, finish. ---
start_server server2.err
grep -q 'recovery: outcome=' "$WORKDIR/server2.err" ||
    fail "restarted server reported no journal recovery"
BASELINE_FD=$(fd_count)
run_phase post 0

# All clients disconnected: the fd table must return to baseline
# (give the poll loop a moment to observe the EOFs).
LEAK_OK=0
for _ in $(seq 1 50); do
    [ "$(fd_count)" -le "$BASELINE_FD" ] && { LEAK_OK=1; break; }
    sleep 0.1
done
[ "$LEAK_OK" -eq 1 ] ||
    fail "leaked fds: $(fd_count) open vs baseline $BASELINE_FD"

# --- Final strict verification + metrics scrape over the socket. ---
exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "control connect failed"
printf 'TICK\nQUERY\nSTATS\nMETRICS prom\nSHUTDOWN\n' >&3
cat <&3 > "$WORKDIR/final_transcript.txt"
exec 3<&- 3>&-
wait "$SRV"
[ $? -eq 0 ] || fail "server exited non-zero after SHUTDOWN"

grep -q 'selfcheck=ok' "$WORKDIR/final_transcript.txt" ||
    fail "final epoch failed the incremental self-check"
grep -q 'OK shutdown' "$WORKDIR/final_transcript.txt" ||
    fail "missing SHUTDOWN acknowledgement"
FINAL_EPOCH=$(sed -n 's/^EPOCH \([0-9]*\).*/\1/p' \
    "$WORKDIR/final_transcript.txt" | tail -1)
[ -n "$FINAL_EPOCH" ] || fail "no EPOCH reply in the final session"
[ "$FINAL_EPOCH" -ge $((EPOCHS / 2)) ] ||
    fail "only $FINAL_EPOCH epochs survived (wanted >= $((EPOCHS / 2)))"

# The scrape artifact: exposition text with the ref_net_ series.
sed -n '/^# HELP/,$p' "$WORKDIR/final_transcript.txt" \
    > "$WORKDIR/metrics.prom"
for series in ref_net_accepted_total ref_net_bytes_in_total \
    ref_net_bytes_out_total ref_net_lines_total; do
    grep -q "^$series " "$WORKDIR/metrics.prom" ||
        fail "metrics scrape is missing $series"
done
grep -q 'server: .* accepted' "$WORKDIR/server2.err" ||
    fail "missing server summary line"

echo "ok: $CLIENTS clients, final epoch $FINAL_EPOCH," \
    "kill -9 + journal recovery, fds back to $BASELINE_FD," \
    "scrape at $WORKDIR/metrics.prom"
