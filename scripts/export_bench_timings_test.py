#!/usr/bin/env python3
"""Unit tests for export_bench_timings.py: the google-benchmark export
path and the BENCH schema validator (--check)."""

import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import export_bench_timings as ebt


def write(directory, name, payload):
    path = pathlib.Path(directory) / name
    path.write_text(json.dumps(payload))
    return path


GOOD = {"name": "socket_text_1shard", "wall_ns": 51234.5,
        "iterations": 8000}
GOOD_FULL = {"name": "socket_binary_4shard", "wall_ns": 9876.0,
             "iterations": 64000, "ops_per_sec": 101234.2,
             "p50_ns": 8000, "p90_ns": 15000, "p99_ns": 40000}
GOOD_POOLED = {**GOOD_FULL, "name": "pool_scale_P100000",
               "agents": 100000, "pools": 64,
               "tick_p50_ns": 120000, "tick_p99_ns": 900000}
GOOD_STRATEGY = {"name": "strategy/n64_k1", "wall_ns": 8,
                 "iterations": 500, "agents": 64, "liars": 1,
                 "rounds": 7, "converged": 1,
                 "gain_ratio": 1.0013, "mean_gain_ratio": 1.0013,
                 "report_deviation": 0.021,
                 "utilization_loss": -8.5e-05,
                 "honest_si_margin": 1.002,
                 "honest_ef_margin": 1.0003,
                 "liar_si_margin": 1.125}


class CheckTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_minimal_and_extended_records_pass(self):
        path = write(self.dir.name, "BENCH_a.json", GOOD)
        full = write(self.dir.name, "BENCH_b.json", GOOD_FULL)
        pooled = write(self.dir.name, "BENCH_p.json", GOOD_POOLED)
        strategy = write(self.dir.name, "BENCH_s.json",
                         GOOD_STRATEGY)
        self.assertEqual(ebt.check([path, full, pooled, strategy]),
                         [])

    def test_array_of_records_passes(self):
        path = write(self.dir.name, "BENCH_arr.json",
                     [GOOD, GOOD_FULL])
        self.assertEqual(ebt.check([path]), [])

    def test_missing_required_field_fails(self):
        for field in ("name", "wall_ns", "iterations"):
            record = dict(GOOD)
            del record[field]
            path = write(self.dir.name, "BENCH_m.json", record)
            errors = ebt.check([path])
            self.assertEqual(len(errors), 1, errors)
            self.assertIn(field, errors[0])

    def test_wrong_types_fail(self):
        cases = [
            {**GOOD, "name": 7},
            {**GOOD, "wall_ns": "fast"},
            {**GOOD, "wall_ns": -1},
            {**GOOD, "iterations": 0},
            {**GOOD, "iterations": 2.5},
            {**GOOD, "iterations": True},
            {**GOOD, "p99_ns": "slow"},
            {**GOOD, "agents": 1.5},
            {**GOOD, "pools": -1},
            {**GOOD, "tick_p99_ns": "slow"},
            {**GOOD_STRATEGY, "converged": 2},
            {**GOOD_STRATEGY, "converged": True},
            {**GOOD_STRATEGY, "gain_ratio": -0.5},
            {**GOOD_STRATEGY, "rounds": 1.5},
            {**GOOD_STRATEGY, "liars": -1},
            {**GOOD_STRATEGY, "utilization_loss": "cheap"},
            {**GOOD_STRATEGY, "honest_si_margin": -1},
        ]
        for record in cases:
            path = write(self.dir.name, "BENCH_t.json", record)
            self.assertNotEqual(ebt.check([path]), [], record)

    def test_unknown_field_fails(self):
        path = write(self.dir.name, "BENCH_u.json",
                     {**GOOD, "surprise": 1})
        errors = ebt.check([path])
        self.assertEqual(len(errors), 1)
        self.assertIn("surprise", errors[0])

    def test_non_json_and_empty_array_fail(self):
        garbled = pathlib.Path(self.dir.name) / "BENCH_g.json"
        garbled.write_text("{not json")
        empty = write(self.dir.name, "BENCH_e.json", [])
        self.assertEqual(len(ebt.check([garbled])), 1)
        self.assertEqual(len(ebt.check([empty])), 1)

    def test_array_errors_carry_index(self):
        path = write(self.dir.name, "BENCH_i.json",
                     [GOOD, {"name": "x"}])
        errors = ebt.check([path])
        self.assertTrue(all("[1]" in error for error in errors),
                        errors)

    def test_main_exit_codes(self):
        good = write(self.dir.name, "BENCH_ok.json", GOOD)
        bad = write(self.dir.name, "BENCH_bad.json", {"name": "x"})
        self.assertEqual(ebt.main(["--check", str(good)]), 0)
        self.assertEqual(ebt.main(["--check", str(good), str(bad)]), 1)


class ExportTest(unittest.TestCase):
    def test_exports_per_iteration_nanoseconds(self):
        with tempfile.TemporaryDirectory() as directory:
            source = write(directory, "gbench.json", {
                "benchmarks": [
                    {"name": "BM_solve/8", "real_time": 2.5,
                     "time_unit": "us", "iterations": 1000},
                    {"name": "BM_solve/8_mean", "real_time": 2.5,
                     "time_unit": "us", "iterations": 3,
                     "run_type": "aggregate"},
                ]})
            written = ebt.export(source, pathlib.Path(directory))
            self.assertEqual(len(written), 1)
            record = json.loads(written[0].read_text())
            self.assertEqual(record["wall_ns"], 2500.0)
            self.assertEqual(record["iterations"], 1000)
            # The exporter's own output must satisfy its own checker.
            self.assertEqual(ebt.check(written), [])


if __name__ == "__main__":
    unittest.main()
