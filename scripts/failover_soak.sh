#!/usr/bin/env bash
# Warm-standby failover soak: a journaled group-commit primary and a
# SYNC-following standby, kill -9 on the primary, PROMOTE, and strict
# bit-identity checks against an uninterrupted reference.
#
# Per iteration:
#   1. Start primary (journal + group commit) and standby (--follow).
#   2. Churn the primary over TCP, then wait until the standby's
#      state_hash equals the primary's (replication is caught up).
#   3. Snapshot the primary's journal dir as the reference, kill -9
#      the primary, PROMOTE the standby, TICK once.
#   4. The promoted standby's post-TICK state_hash must equal a
#      fresh replay of the reference journal + one TICK: the first
#      allocation after failover is bit-identical to what the dead
#      primary would have produced.
#   5. Restart the old primary from its journal as a follower of the
#      promoted standby and require it to catch up (snapshot resync)
#      to hash equality — zero lag — before the iteration passes.
#
# After the loop (only when BENCH_DIR is given):
#   a. Journal append throughput A/B over the socket, fsync-every-1
#      vs group commit, via ref_bomb.
#   b. A mid-churn kill -9 with ref_bomb --failover-to riding the
#      outage; its measured gap plus the per-iteration first-TICK
#      times and the primary's ship-lag percentiles land in
#      BENCH_replication.json (export_bench_timings.py schema).
#
# usage: failover_soak.sh <ref_serve> <ref_bomb> <workdir>
#                         [iterations] [bench_out_dir]
set -u

REF_SERVE=${1:?usage: failover_soak.sh <ref_serve> <ref_bomb> <workdir> [iterations] [bench_out_dir]}
REF_BOMB=${2:?usage: failover_soak.sh <ref_serve> <ref_bomb> <workdir> [iterations] [bench_out_dir]}
WORKDIR=${3:?usage: failover_soak.sh <ref_serve> <ref_bomb> <workdir> [iterations] [bench_out_dir]}
ITERATIONS=${4:-20}
BENCH_DIR=${5:-}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
GAPS="$WORKDIR/failover_gaps_ns.txt"
: > "$GAPS"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

fail() {
    echo "FAIL (iteration ${i:-bench}): $1" >&2
    for log in primary.err standby.err refollow.err reference.err; do
        if [ -s "$WORKDIR/$log" ]; then
            echo "--- $log ---" >&2
            tail -20 "$WORKDIR/$log" >&2
        fi
    done
    exit 1
}

# Send newline-separated commands to a server and print every reply
# line (half-close after writing; the server drains, then closes).
client() {
    local port=$1
    shift
    python3 - "$port" "$@" <<'PY'
import socket, sys
port, cmds = int(sys.argv[1]), sys.argv[2:]
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.sendall(("\n".join(cmds) + "\n").encode())
s.shutdown(socket.SHUT_WR)
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
sys.stdout.write(data.decode())
PY
}

# Block until a server's stderr log announces its ephemeral port.
wait_port() {
    local log=$1 port=""
    for _ in $(seq 1 200); do
        # Anchor on the LISTENING line: a follower's FOLLOWING line
        # also carries an addr= (the primary's).
        port=$(sed -n \
            's/.*LISTENING addr=127.0.0.1:\([0-9]*\).*/\1/p' \
            "$log" 2>/dev/null | head -1)
        [ -n "$port" ] && break
        sleep 0.05
    done
    [ -n "$port" ] || return 1
    echo "$port"
}

state_hash() {
    client "$1" STATS 2>/dev/null |
        grep -o 'state_hash=[0-9]*' | cut -d= -f2
}

now_ns() { date +%s%N; }

for ((i = 1; i <= ITERATIONS; ++i)); do
    P_JOURNAL="$WORKDIR/primary_journal"
    rm -rf "$P_JOURNAL" "$WORKDIR/reference_journal"

    "$REF_SERVE" --capacity 24,12 --journal "$P_JOURNAL" \
        --fsync-policy group:65536,2000 --selfcheck \
        --listen 127.0.0.1:0 --heartbeat-interval 50 \
        > /dev/null 2> "$WORKDIR/primary.err" &
    PRIMARY=$!
    PIDS+=("$PRIMARY")
    PPORT=$(wait_port "$WORKDIR/primary.err") ||
        fail "primary never listened"

    "$REF_SERVE" --capacity 24,12 --selfcheck \
        --follow "127.0.0.1:$PPORT" --listen 127.0.0.1:0 \
        > /dev/null 2> "$WORKDIR/standby.err" &
    STANDBY=$!
    PIDS+=("$STANDBY")
    SPORT=$(wait_port "$WORKDIR/standby.err") ||
        fail "standby never listened"

    # Churn: unique names per iteration, a DEPART every third agent,
    # ticks interleaved so shipped TICK hashes exercise the
    # divergence check continuously.
    CHURN=()
    for j in $(seq 1 12); do
        CHURN+=("ADMIT soak_${i}_${j} 0.6 0.4" "TICK")
        [ $((j % 3)) -eq 0 ] && CHURN+=("DEPART soak_${i}_${j}")
    done
    client "$PPORT" "${CHURN[@]}" > "$WORKDIR/churn.out" ||
        fail "churn session failed"
    grep -q 'selfcheck=ok' "$WORKDIR/churn.out" ||
        fail "primary epochs failed the self-check"

    # Quiesce: replication caught up when the hashes agree.
    HP=""
    HS=""
    for _ in $(seq 1 200); do
        HP=$(state_hash "$PPORT")
        HS=$(state_hash "$SPORT")
        [ -n "$HP" ] && [ "$HP" = "$HS" ] && break
        sleep 0.05
    done
    [ -n "$HP" ] && [ "$HP" = "$HS" ] ||
        fail "standby never caught up (primary=$HP standby=$HS)"

    # Freeze the uninterrupted reference, then kill without warning.
    cp -a "$P_JOURNAL" "$WORKDIR/reference_journal"
    kill -9 "$PRIMARY" 2>/dev/null
    wait "$PRIMARY" 2>/dev/null

    T0=$(now_ns)
    PROMOTED=$(client "$SPORT" PROMOTE TICK STATS) ||
        fail "promote session failed"
    T1=$(now_ns)
    echo "$((T1 - T0))" >> "$GAPS"
    echo "$PROMOTED" | grep -q '^OK promoted' ||
        fail "PROMOTE not acknowledged: $(echo "$PROMOTED" | head -1)"
    echo "$PROMOTED" | grep -q 'selfcheck=ok' ||
        fail "first post-promote TICK failed the self-check"
    F=$(echo "$PROMOTED" | grep -o 'state_hash=[0-9]*' | cut -d= -f2)
    [ -n "$F" ] || fail "no state_hash in post-promote STATS"

    # The uninterrupted reference: replay the dead primary's WAL and
    # take the same single TICK.
    printf 'TICK\nSTATS\n' |
        "$REF_SERVE" --capacity 24,12 \
            --journal "$WORKDIR/reference_journal" \
            --selfcheck --strict \
            > "$WORKDIR/reference.out" 2> "$WORKDIR/reference.err" ||
        fail "reference replay failed strict verification"
    R=$(grep -o 'state_hash=[0-9]*' "$WORKDIR/reference.out" |
        cut -d= -f2)
    [ -n "$R" ] || fail "no state_hash in reference STATS"
    [ "$F" = "$R" ] ||
        fail "post-failover state diverged from reference ($F != $R)"

    # The old primary rejoins as a follower: journal recovery, then
    # SYNC snapshot resync onto the promoted standby's history, down
    # to zero lag (hash equality while the promoted side is idle).
    "$REF_SERVE" --capacity 24,12 --journal "$P_JOURNAL" \
        --follow "127.0.0.1:$SPORT" --listen 127.0.0.1:0 \
        > /dev/null 2> "$WORKDIR/refollow.err" &
    REFOLLOW=$!
    PIDS+=("$REFOLLOW")
    RPORT=$(wait_port "$WORKDIR/refollow.err") ||
        fail "re-followed old primary never listened"
    HNEW=$(state_hash "$SPORT")
    HOLD=""
    for _ in $(seq 1 200); do
        HOLD=$(state_hash "$RPORT")
        [ -n "$HOLD" ] && [ "$HOLD" = "$HNEW" ] && break
        sleep 0.05
    done
    [ "$HOLD" = "$HNEW" ] ||
        fail "old primary never caught up ($HOLD != $HNEW)"
    grep -q 'recovery: outcome=' "$WORKDIR/refollow.err" ||
        fail "old primary restarted without journal recovery"

    client "$SPORT" SHUTDOWN > /dev/null 2>&1
    kill -9 "$REFOLLOW" 2>/dev/null
    wait "$STANDBY" 2>/dev/null
    wait "$REFOLLOW" 2>/dev/null
    echo "iteration $i/$ITERATIONS: failover ok," \
        "first TICK bit-identical, old primary resynced"
done

echo "ok: $ITERATIONS kill -9 + PROMOTE cycles, every first TICK" \
    "bit-identical to the uninterrupted reference"

[ -n "$BENCH_DIR" ] || exit 0
mkdir -p "$BENCH_DIR"

# --- Bench phase a: journal append throughput, every:1 vs group ----
bench_run() {
    local dir=$1 name=$2
    shift 2
    rm -rf "$dir"
    "$REF_SERVE" --capacity 24,12 --journal "$dir" "$@" \
        --listen 127.0.0.1:0 > /dev/null 2> "$WORKDIR/bench.err" &
    local pid=$!
    PIDS+=("$pid")
    local port
    port=$(wait_port "$WORKDIR/bench.err") ||
        fail "bench server never listened"
    "$REF_BOMB" --connect "127.0.0.1:$port" --connections 2 \
        --ops 2000 --mix 1:1:1:0:0 --name "$name" \
        2> /dev/null
    client "$port" SHUTDOWN > /dev/null 2>&1
    wait "$pid" 2>/dev/null
}

bench_run "$WORKDIR/bench_every1" repl_journal_every1 \
    --fsync-every 1 > "$WORKDIR/bench_every1.json"
bench_run "$WORKDIR/bench_group" repl_journal_group \
    --fsync-policy group:1048576,5000 > "$WORKDIR/bench_group.json"

# --- Bench phase b: mid-churn kill -9 with ref_bomb failover -------
rm -rf "$WORKDIR/bomb_journal"
"$REF_SERVE" --capacity 24,12 --journal "$WORKDIR/bomb_journal" \
    --fsync-policy group:65536,2000 --listen 127.0.0.1:0 \
    --heartbeat-interval 50 > /dev/null 2> "$WORKDIR/primary.err" &
PRIMARY=$!
PIDS+=("$PRIMARY")
PPORT=$(wait_port "$WORKDIR/primary.err") ||
    fail "bench primary never listened"
"$REF_SERVE" --capacity 24,12 --follow "127.0.0.1:$PPORT" \
    --listen 127.0.0.1:0 > /dev/null 2> "$WORKDIR/standby.err" &
STANDBY=$!
PIDS+=("$STANDBY")
SPORT=$(wait_port "$WORKDIR/standby.err") ||
    fail "bench standby never listened"

"$REF_BOMB" --connect "127.0.0.1:$PPORT" \
    --failover-to "127.0.0.1:$SPORT" --connections 2 --ops 1500 \
    --name repl_midchurn_failover > "$WORKDIR/bomb.json" \
    2> "$WORKDIR/bomb.err" &
BOMB=$!
sleep 0.4
# Ship-lag percentiles while records are actually flowing.
client "$PPORT" "METRICS prom" > "$WORKDIR/primary_metrics.prom" ||
    fail "primary metrics scrape failed"
kill -9 "$PRIMARY" 2>/dev/null
wait "$PRIMARY" 2>/dev/null
sleep 0.1
client "$SPORT" PROMOTE > /dev/null ||
    fail "bench PROMOTE failed"
wait "$BOMB" || fail "ref_bomb did not survive the failover"
grep -q 'failovers=2' "$WORKDIR/bomb.err" ||
    fail "ref_bomb did not fail over on both connections"
client "$SPORT" SHUTDOWN > /dev/null 2>&1
wait "$STANDBY" 2>/dev/null

# --- Assemble BENCH_replication.json -------------------------------
python3 - "$WORKDIR" "$BENCH_DIR" <<'PY'
import json, pathlib, re, statistics, sys

work, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
records = [
    json.loads(work.joinpath("bench_every1.json").read_text()),
    json.loads(work.joinpath("bench_group.json").read_text()),
]

gaps = sorted(
    int(line)
    for line in work.joinpath("failover_gaps_ns.txt")
    .read_text().split()
    if line
)
def rank(sample, q):
    return sample[max(0, min(len(sample) - 1,
                             int(q * len(sample))))]
bomb_gap = re.search(r"failover_gap_ns=(\d+)",
                     work.joinpath("bomb.err").read_text())
if bomb_gap:
    gaps.append(int(bomb_gap.group(1)))
    gaps.sort()
records.append({
    "name": "repl_failover_first_tick",
    "wall_ns": statistics.mean(gaps),
    "iterations": len(gaps),
    "p50_ns": rank(gaps, 0.50),
    "p90_ns": rank(gaps, 0.90),
    "p99_ns": rank(gaps, 0.99),
})

lag = {}
for line in work.joinpath("primary_metrics.prom").read_text().splitlines():
    match = re.match(r"ref_repl_ship_lag_ns(_p\d+|_count)\s+(\S+)",
                     line)
    if match:
        lag[match.group(1)] = float(match.group(2))
if lag.get("_count", 0) > 0:
    records.append({
        "name": "repl_ship_lag",
        "wall_ns": lag["_p50"],
        "iterations": int(lag["_count"]),
        "p50_ns": lag["_p50"],
        "p90_ns": lag["_p90"],
        "p99_ns": lag["_p99"],
    })

out.joinpath("BENCH_replication.json").write_text(
    json.dumps(records, indent=2) + "\n")
print("wrote", out / "BENCH_replication.json",
      f"({len(records)} records, {len(gaps)} failover samples)")
PY

python3 "$(dirname "$0")/export_bench_timings.py" --check \
    "$BENCH_DIR/BENCH_replication.json" ||
    fail "BENCH_replication.json failed the schema check"
echo "ok: bench trail written to $BENCH_DIR/BENCH_replication.json"
