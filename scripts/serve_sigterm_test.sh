#!/usr/bin/env bash
# SIGTERM must produce a clean, journaled shutdown: exit 0, the
# "(shutdown)" session marker, and the final STATS dump on stderr.
# The server reads from a fifo so the signal lands while it is
# blocked on a live session, not at EOF.
set -u

REF_SERVE=${1:?usage: serve_sigterm_test.sh <ref_serve> <workdir>}
WORKDIR=${2:?usage: serve_sigterm_test.sh <ref_serve> <workdir>}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
FIFO="$WORKDIR/stdin.fifo"
mkfifo "$FIFO"

fail() {
    echo "FAIL: $1" >&2
    echo "--- server stderr ---" >&2
    cat "$WORKDIR/err" >&2 || true
    exit 1
}

"$REF_SERVE" --capacity 24,12 --journal "$WORKDIR/journal" \
    < "$FIFO" > "$WORKDIR/out" 2> "$WORKDIR/err" &
SERVER=$!
exec 3> "$FIFO"
printf 'ADMIT user1 0.6 0.4\nTICK\n' >&3

# Wait until the tick is processed so the signal interrupts a
# blocked getline, then ask the server to stop.
for _ in $(seq 1 200); do
    grep -q 'EPOCH 1' "$WORKDIR/out" 2>/dev/null && break
    sleep 0.05
done
grep -q 'EPOCH 1' "$WORKDIR/out" || fail "server never processed TICK"

kill -TERM "$SERVER"
wait "$SERVER"
STATUS=$?
exec 3>&-

[ "$STATUS" -eq 0 ] || fail "expected exit 0 after SIGTERM, got $STATUS"
grep -q '(shutdown)' "$WORKDIR/err" || fail "missing (shutdown) marker"
grep -q 'final stats:' "$WORKDIR/err" || fail "missing final stats dump"
grep -q 'journal_fsyncs=' "$WORKDIR/err" || fail "missing journal stats"
grep -q 'journal_enabled=1' "$WORKDIR/err" || fail "journal not enabled"

echo "ok: SIGTERM flushed the journal and exited cleanly"
