#!/usr/bin/env bash
# SIGTERM must produce a clean, journaled shutdown: exit 0, the
# "(shutdown)" session marker, and the final STATS dump on stderr.
# The server reads from a fifo so the signal lands while it is
# blocked on a live session, not at EOF.
set -u

REF_SERVE=${1:?usage: serve_sigterm_test.sh <ref_serve> <workdir>}
WORKDIR=${2:?usage: serve_sigterm_test.sh <ref_serve> <workdir>}

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
FIFO="$WORKDIR/stdin.fifo"
mkfifo "$FIFO"

fail() {
    echo "FAIL: $1" >&2
    echo "--- server stderr ---" >&2
    cat "$WORKDIR"/err* >&2 || true
    exit 1
}

"$REF_SERVE" --capacity 24,12 --journal "$WORKDIR/journal" \
    < "$FIFO" > "$WORKDIR/out" 2> "$WORKDIR/err" &
SERVER=$!
exec 3> "$FIFO"
printf 'ADMIT user1 0.6 0.4\nTICK\n' >&3

# Wait until the tick is processed so the signal interrupts a
# blocked getline, then ask the server to stop.
for _ in $(seq 1 200); do
    grep -q 'EPOCH 1' "$WORKDIR/out" 2>/dev/null && break
    sleep 0.05
done
grep -q 'EPOCH 1' "$WORKDIR/out" || fail "server never processed TICK"

kill -TERM "$SERVER"
wait "$SERVER"
STATUS=$?
exec 3>&-

[ "$STATUS" -eq 0 ] || fail "expected exit 0 after SIGTERM, got $STATUS"
grep -q '(shutdown)' "$WORKDIR/err" || fail "missing (shutdown) marker"
grep -q 'final stats:' "$WORKDIR/err" || fail "missing final stats dump"
grep -q 'journal_fsyncs=' "$WORKDIR/err" || fail "missing journal stats"
grep -q 'journal_enabled=1' "$WORKDIR/err" || fail "journal not enabled"

# Group-commit drain order: with flush thresholds the session can
# never reach (1 MiB / 10 s), the ADMIT+TICK batch is still pending
# when SIGTERM lands. The final STATS must describe a fully drained
# journal — the in-flight batch fsynced BEFORE the dump — so
# journal_pending is 0 and the commit watermark covers every record.
FIFO2="$WORKDIR/stdin2.fifo"
mkfifo "$FIFO2"
"$REF_SERVE" --capacity 24,12 --journal "$WORKDIR/journal2" \
    --fsync-policy group:1048576,10000000 \
    < "$FIFO2" > "$WORKDIR/out2" 2> "$WORKDIR/err2" &
SERVER=$!
exec 3> "$FIFO2"
printf 'ADMIT user2 0.6 0.4\nTICK\n' >&3

for _ in $(seq 1 200); do
    grep -q 'EPOCH 1' "$WORKDIR/out2" 2>/dev/null && break
    sleep 0.05
done
grep -q 'EPOCH 1' "$WORKDIR/out2" ||
    fail "group-commit server never processed TICK"
kill -TERM "$SERVER"
wait "$SERVER"
STATUS=$?
exec 3>&-
[ "$STATUS" -eq 0 ] ||
    fail "expected exit 0 after group-commit SIGTERM, got $STATUS"

records=$(grep -o 'journal_records=[0-9]*' "$WORKDIR/err2" |
    tail -1 | cut -d= -f2)
committed=$(grep -o 'journal_committed=[0-9]*' "$WORKDIR/err2" |
    tail -1 | cut -d= -f2)
pending=$(grep -o 'journal_pending=[0-9]*' "$WORKDIR/err2" |
    tail -1 | cut -d= -f2)
[ -n "$records" ] && [ "$records" -gt 0 ] ||
    fail "group-commit run journaled nothing"
[ "$pending" = "0" ] ||
    fail "final STATS printed before the batch flushed (pending=$pending)"
[ "$committed" = "$records" ] ||
    fail "commit watermark short of the WAL ($committed < $records)"

# And the flushed batch is really on disk: a strict restart replays it.
printf 'QUERY\n' |
    "$REF_SERVE" --capacity 24,12 --journal "$WORKDIR/journal2" \
        --strict > "$WORKDIR/verify2.out" 2> "$WORKDIR/verify2.err" ||
    fail "restart on the group-commit journal failed"
grep -q 'user2' "$WORKDIR/verify2.out" ||
    fail "drained batch lost across restart"

echo "ok: SIGTERM flushed the journal (group-commit batch drained" \
    "before final stats) and exited cleanly"
