#!/usr/bin/env python3
"""Gate a strategy-proofness sweep on the paper's SPL claim.

Reads BENCH-schema records produced by ref_adversary /
bench_strategy.sh (one per population size N) and enforces, per
liar-count series sorted by N:

  1. Lying never loses: gain_ratio >= 1 - --gain-eps at every N (the
     truthful report is always feasible, so a best response below it
     is a search bug).
  2. Monotone-trend decay: doubling the population never raises the
     liar's edge beyond --trend-slack, and the largest N's gain is
     within --max-final-gain of truthful (strategy-proofness in the
     large, Section 4.3 / Appendix A).
  3. The honest cohort is never pushed below its fairness
     guarantees: honest_si_margin >= 1 and honest_ef_margin >= 1
     (within --margin-eps) at every N.

Exit status: 0 clean, 1 on any violated property, 2 on malformed
inputs.

Usage:
  check_strategyproofness.py BENCH_strategyproofness.json...
      [--max-final-gain 1.01] [--gain-eps 1e-9]
      [--trend-slack 1e-6] [--margin-eps 1e-9]
"""

import argparse
import json
import pathlib
import sys


def load_records(paths):
    records = []
    for path in paths:
        doc = json.loads(pathlib.Path(path).read_text())
        records.extend(doc if isinstance(doc, list) else [doc])
    return records


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="BENCH files with strategy records")
    parser.add_argument("--max-final-gain", type=float, default=1.01,
                        help="largest-N gain ceiling (default 1.01: "
                             "within 1%% of truthful)")
    parser.add_argument("--gain-eps", type=float, default=1e-9,
                        help="numerical slack below gain 1.0")
    parser.add_argument("--trend-slack", type=float, default=1e-6,
                        help="allowed relative gain increase between "
                             "consecutive N")
    parser.add_argument("--margin-eps", type=float, default=1e-9,
                        help="numerical slack below margin 1.0")
    args = parser.parse_args(argv)

    try:
        records = [r for r in load_records(args.inputs)
                   if "gain_ratio" in r]
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: unreadable bench file: {exc}", file=sys.stderr)
        return 2
    if not records:
        print("error: no strategy records in inputs", file=sys.stderr)
        return 2

    series = {}
    for record in records:
        try:
            series.setdefault(record["liars"], []).append(record)
        except KeyError:
            print(f"error: record '{record.get('name')}' has no "
                  "'liars' field", file=sys.stderr)
            return 2

    failures = []
    for liars, group in sorted(series.items()):
        group.sort(key=lambda r: r["agents"])
        previous = None
        for record in group:
            name = record["name"]
            gain = record["gain_ratio"]
            si = record.get("honest_si_margin", 1.0)
            ef = record.get("honest_ef_margin", 1.0)
            print(f"{name}: N={record['agents']} K={liars} "
                  f"gain={gain:.9f} honest_si={si:.9f} "
                  f"honest_ef={ef:.9f} "
                  f"rounds={record.get('rounds', '?')}")
            if gain < 1.0 - args.gain_eps:
                failures.append(
                    f"'{name}': gain {gain} below 1 - lying lost, "
                    "the best-response search is broken")
            if previous is not None and \
                    gain > previous["gain_ratio"] * \
                    (1.0 + args.trend_slack):
                failures.append(
                    f"'{name}': gain {gain} rose above "
                    f"'{previous['name']}''s "
                    f"{previous['gain_ratio']} - decay is not "
                    "monotone in trend")
            if si < 1.0 - args.margin_eps:
                failures.append(
                    f"'{name}': honest SI margin {si} < 1 - lying "
                    "pushed honest agents below their equal split")
            if ef < 1.0 - args.margin_eps:
                failures.append(
                    f"'{name}': honest EF margin {ef} < 1")
            previous = record
        final = group[-1]
        if final["gain_ratio"] > args.max_final_gain:
            failures.append(
                f"'{final['name']}': largest-N gain "
                f"{final['gain_ratio']} exceeds the "
                f"{args.max_final_gain} ceiling - SPL decay too "
                "slow")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: {len(records)} record(s) in {len(series)} "
              "series satisfy SPL decay and honest-cohort margins")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
