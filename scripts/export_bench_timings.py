#!/usr/bin/env python3
"""Normalize google-benchmark JSON into standardized BENCH_*.json files.

Each benchmark in the input becomes one small file,
``BENCH_<sanitized name>.json``, holding exactly::

    {"name": ..., "wall_ns": ..., "iterations": ...}

so the perf trajectory can be tracked across commits without parsing
google-benchmark's full schema. ``wall_ns`` is real (wall-clock) time
per iteration, converted from whatever time_unit the run used.

Usage: export_bench_timings.py <benchmark_out.json>... [--out-dir DIR]
"""

import argparse
import json
import pathlib
import re
import sys

_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def sanitize(name):
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def export(path, out_dir):
    doc = json.loads(pathlib.Path(path).read_text())
    written = []
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _TO_NS[bench.get("time_unit", "ns")]
        record = {
            "name": bench["name"],
            "wall_ns": bench["real_time"] * scale,
            "iterations": bench["iterations"],
        }
        out = out_dir / f"BENCH_{sanitize(bench['name'])}.json"
        out.write_text(json.dumps(record, indent=2) + "\n")
        written.append(out)
    return written


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="google-benchmark --benchmark_out files")
    parser.add_argument("--out-dir", default=".",
                        help="directory for BENCH_*.json (default: .)")
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for path in args.inputs:
        written.extend(export(path, out_dir))
    if not written:
        print("error: no benchmarks found in inputs", file=sys.stderr)
        return 1
    for out in written:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
