#!/usr/bin/env python3
"""Normalize google-benchmark JSON into standardized BENCH_*.json files.

Each benchmark in the input becomes one small file,
``BENCH_<sanitized name>.json``, holding exactly::

    {"name": ..., "wall_ns": ..., "iterations": ...}

so the perf trajectory can be tracked across commits without parsing
google-benchmark's full schema. ``wall_ns`` is real (wall-clock) time
per iteration, converted from whatever time_unit the run used.

Records produced elsewhere (ref_bomb, bench_socket.sh,
bench_pool_scale.sh) share the same schema, optionally extended with
``ops_per_sec``, ``p50_ns`` / ``p90_ns`` / ``p99_ns`` latency
quantiles, and — for pooled scale runs — ``agents``, ``pools``, and
TICK-only ``tick_p50_ns`` / ``tick_p99_ns``; a BENCH file may hold
one record or a JSON array of them. Strategy-proofness records
(ref_adversary, bench_strategy.sh) add ``liars``, ``rounds``,
``converged``, the ``gain_ratio`` family, ``utilization_loss`` (may
be negative: lying can *raise* reported welfare), and the cohort
margins.

Usage:
  export_bench_timings.py <benchmark_out.json>... [--out-dir DIR]
  export_bench_timings.py --check <BENCH_*.json>...
"""

import argparse
import json
import pathlib
import re
import sys

_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

#: Required fields of one BENCH record and their validators.
_REQUIRED = {
    "name": lambda v: isinstance(v, str) and v != "",
    "wall_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "iterations": lambda v: isinstance(v, int)
    and not isinstance(v, bool) and v >= 1,
}

#: Optional extensions (load generators add these).
_OPTIONAL = {
    "ops_per_sec": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "p50_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "p90_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "p99_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "agents": lambda v: isinstance(v, int)
    and not isinstance(v, bool) and v >= 0,
    "pools": lambda v: isinstance(v, int)
    and not isinstance(v, bool) and v >= 0,
    "tick_p50_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "tick_p99_ns": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    # Strategy-proofness sweep records (ref_adversary).
    "liars": lambda v: isinstance(v, int)
    and not isinstance(v, bool) and v >= 0,
    "rounds": lambda v: isinstance(v, int)
    and not isinstance(v, bool) and v >= 0,
    "converged": lambda v: v in (0, 1)
    and not isinstance(v, bool),
    "gain_ratio": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "mean_gain_ratio": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "report_deviation": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "utilization_loss": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "honest_si_margin": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "honest_ef_margin": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
    "liar_si_margin": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool) and v >= 0,
}


def sanitize(name):
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def record_errors(record, where):
    """Schema violations in one BENCH record, as human-readable strings."""
    errors = []
    if not isinstance(record, dict):
        return [f"{where}: record is not a JSON object"]
    for key, valid in _REQUIRED.items():
        if key not in record:
            errors.append(f"{where}: missing required field '{key}'")
        elif not valid(record[key]):
            errors.append(
                f"{where}: field '{key}' has invalid value "
                f"{record[key]!r}")
    for key, valid in _OPTIONAL.items():
        if key in record and not valid(record[key]):
            errors.append(
                f"{where}: field '{key}' has invalid value "
                f"{record[key]!r}")
    known = set(_REQUIRED) | set(_OPTIONAL)
    for key in record:
        if key not in known:
            errors.append(f"{where}: unknown field '{key}'")
    return errors


def check(paths):
    """Validate BENCH files; a list of error strings (empty when clean)."""
    errors = []
    for path in paths:
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as exc:
            errors.append(f"{path}: unreadable or not JSON ({exc})")
            continue
        records = doc if isinstance(doc, list) else [doc]
        if not records:
            errors.append(f"{path}: empty record array")
        for index, record in enumerate(records):
            where = f"{path}[{index}]" if isinstance(doc, list) else str(path)
            errors.extend(record_errors(record, where))
    return errors


def export(path, out_dir):
    doc = json.loads(pathlib.Path(path).read_text())
    written = []
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _TO_NS[bench.get("time_unit", "ns")]
        record = {
            "name": bench["name"],
            "wall_ns": bench["real_time"] * scale,
            "iterations": bench["iterations"],
        }
        out = out_dir / f"BENCH_{sanitize(bench['name'])}.json"
        out.write_text(json.dumps(record, indent=2) + "\n")
        written.append(out)
    return written


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+",
                        help="google-benchmark --benchmark_out files, "
                             "or BENCH_*.json files with --check")
    parser.add_argument("--out-dir", default=".",
                        help="directory for BENCH_*.json (default: .)")
    parser.add_argument("--check", action="store_true",
                        help="validate BENCH_*.json files against the "
                             "schema instead of exporting")
    args = parser.parse_args(argv)

    if args.check:
        errors = check(args.inputs)
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        if not errors:
            print(f"{len(args.inputs)} file(s) conform to the BENCH "
                  "schema")
        return 1 if errors else 0

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for path in args.inputs:
        written.extend(export(path, out_dir))
    if not written:
        print("error: no benchmarks found in inputs", file=sys.stderr)
        return 1
    for out in written:
        print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
