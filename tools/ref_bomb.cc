/**
 * @file
 * Deterministic socket load generator for ref_serve.
 *
 * Drives N concurrent TCP connections at a running ref_serve with a
 * seeded, reproducible stream of protocol commands — text lines or
 * binary frames (svc/wire.hh), closed- or open-loop — and reports
 * throughput plus p50/p90/p99 request latency as one BENCH-schema
 * JSON record on stdout:
 *
 *   {"name": ..., "wall_ns": <ns per op>, "iterations": <ops>,
 *    "ops_per_sec": ..., "p50_ns": ..., "p90_ns": ..., "p99_ns": ...}
 *
 * the same shape scripts/export_bench_timings.py emits for the
 * google-benchmark suites, so CI tracks socket throughput in the
 * same BENCH_*.json trail as every other perf number.
 *
 * Usage:
 *   ref_bomb --connect ADDR:PORT [--binary] [--connections N]
 *            [--ops N] [--seed S] [--mode closed|open] [--window W]
 *            [--rate OPS_PER_SEC] [--mix A:U:D:T:Q] [--name NAME]
 *            [--pools N] [--pool-skew uniform|zipf] [--preload K]
 *
 * Pooled runs (--pools N, against ref_serve --pooled): an untimed
 * prologue per connection first issues idempotent POOL CREATE p0..p<N-1>
 * (racing connections converge by design) and --preload K pipelined
 * ADMIT+ASSIGN pairs, so the measured window starts on a populated
 * tree. In the measured mix every ADMIT is followed by a POOL ASSIGN
 * into a pool drawn uniformly or Zipf(1)-skewed (seeded, per
 * connection). TICK replies are additionally timed on their own:
 * the BENCH record carries tick_p50_ns/tick_p99_ns plus the final
 * live-agent count and the pool count, which is what the pool-scale
 * bench gates on (TICK latency bounded while the population grows).
 *
 * Determinism: connection c's command stream is a pure function of
 * (seed, c) — agent names are connection-local ("b<c>_<k>") so runs
 * against a fresh server visit the same states regardless of how the
 * kernel interleaves connections. The mix weights choose between
 * ADMIT : UPDATE : DEPART : TICK 1 : QUERY <name>, all single-reply
 * commands, so closed-loop accounting is exact: one request unit in,
 * one reply unit out (a line in text framing, a frame in binary).
 *
 * Closed loop (--mode closed): each connection keeps --window
 * requests outstanding and sends the next only after a reply, so
 * measured latency includes queueing behind at most W-1 siblings.
 * Open loop (--mode open): a sender thread per connection paces
 * requests at --rate/connections per second off an absolute schedule
 * (no coordinated omission: a slow server makes latencies grow, not
 * the schedule slip), while the receiver thread times replies;
 * outstanding requests are capped at 4096 to bound memory, and any
 * pacing stall is reported on stderr.
 *
 * ref_bomb never sends SHUTDOWN — the server outlives the run so a
 * bench script can interleave several configurations against one
 * process (scripts/bench_socket.sh does exactly that).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/protocol.hh"
#include "svc/wire.hh"
#include "util/logging.hh"
#include "util/record_io.hh"

namespace {

using namespace ref;
using Clock = std::chrono::steady_clock;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
}

struct CliOptions
{
    std::string connect;       //!< "addr:port", required.
    std::string name = "socket";
    bool binary = false;
    std::size_t connections = 4;
    std::uint64_t ops = 2000;  //!< Per connection.
    std::uint64_t seed = 42;
    bool openLoop = false;
    std::size_t window = 8;    //!< Closed-loop outstanding cap.
    double rate = 5000.0;      //!< Open-loop total ops/sec.
    /** ADMIT : UPDATE : DEPART : TICK : QUERY weights. */
    std::array<std::uint32_t, 5> mix = {3, 3, 1, 2, 3};
    /**
     * Per-connection live-agent cap. An admit-heavy mix would
     * otherwise grow the population without bound over a long run,
     * and each TICK's epoch solve scales with live agents — the run
     * would measure solver growth, not transport. At the cap an
     * ADMIT pick degrades to DEPART (mirror of the empty-set rule,
     * equally deterministic). Preloaded agents are exempt: they are
     * the population under test, not mix-generated churn.
     */
    std::size_t maxLive = 64;
    /** Pools to create and assign into; 0 = flat (no POOL ops). */
    std::size_t pools = 0;
    /** Zipf(1)-skew pool choice instead of uniform. */
    bool zipfSkew = false;
    /** Untimed ADMIT(+ASSIGN) pairs per connection before timing. */
    std::uint64_t preload = 0;
    /**
     * Tolerate one mid-run server loss per connection: reconnect —
     * to --failover-to if given, else the same address — probe with
     * untimed TICKs until the peer accepts writes (a warm standby
     * refuses them until PROMOTE), and finish the run there. The
     * requests in flight at the loss are not retried; their effects
     * may or may not have replicated, so later commands touching
     * those agents can draw ERRs (counted, never fatal). Closed
     * loop only.
     */
    bool expectFailover = false;
    std::string failoverTo;  //!< Standby addr:port for the retry.
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0
        << " --connect ADDR:PORT [--binary] [--connections N]\n"
           "          [--ops N] [--seed S] [--mode closed|open]\n"
           "          [--window W] [--rate OPS_PER_SEC]\n"
           "          [--mix A:U:D:T:Q] [--max-live N]\n"
           "          [--pools N] [--pool-skew uniform|zipf]\n"
           "          [--preload K] [--name NAME]\n"
           "          [--expect-failover] [--failover-to ADDR:PORT]\n\n"
           "Seeded load generator for ref_serve's socket front-end:\n"
           "N connections send a deterministic ADMIT/UPDATE/DEPART/\n"
           "TICK/QUERY stream (text lines, or binary frames with\n"
           "--binary), closed-loop with --window outstanding or\n"
           "open-loop paced at --rate ops/sec total, and print one\n"
           "BENCH-schema JSON record (throughput + p50/p90/p99\n"
           "latency, plus TICK-only percentiles) on stdout.\n"
           "--pools N targets a pooled server: an untimed prologue\n"
           "creates p0..p<N-1> and preloads --preload agents per\n"
           "connection, then every measured ADMIT pairs with a POOL\n"
           "ASSIGN into a uniform or Zipf(1)-skewed pool.\n"
           "--expect-failover tolerates one server loss per\n"
           "connection (closed loop only): reconnect to\n"
           "--failover-to (default: the same address), probe with\n"
           "untimed TICKs until writes are accepted, continue, and\n"
           "report the write-outage gap on stderr.\n";
    std::exit(2);
}

std::uint64_t
parseCount(const char *argv0, const std::string &arg,
           const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const long long parsed = std::stoll(value, &consumed);
        if (consumed != value.size() || parsed < 0)
            usage(argv0, arg + " needs a non-negative integer, got '"
                             + value + "'");
        return static_cast<std::uint64_t>(parsed);
    } catch (const std::logic_error &) {
        usage(argv0, arg + " needs a non-negative integer, got '" +
                         value + "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--connect") {
            options.connect = next();
        } else if (arg == "--name") {
            options.name = next();
        } else if (arg == "--binary") {
            options.binary = true;
        } else if (arg == "--connections") {
            options.connections = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
            if (options.connections == 0)
                usage(argv[0], "--connections must be positive");
        } else if (arg == "--ops") {
            options.ops = parseCount(argv[0], arg, next());
            if (options.ops == 0)
                usage(argv[0], "--ops must be positive");
        } else if (arg == "--seed") {
            options.seed = parseCount(argv[0], arg, next());
        } else if (arg == "--mode") {
            const std::string mode = next();
            if (mode == "closed")
                options.openLoop = false;
            else if (mode == "open")
                options.openLoop = true;
            else
                usage(argv[0],
                      "--mode wants closed or open, got '" + mode +
                          "'");
        } else if (arg == "--window") {
            options.window = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
            if (options.window == 0)
                usage(argv[0], "--window must be positive");
        } else if (arg == "--rate") {
            try {
                options.rate = std::stod(next());
            } catch (const std::logic_error &) {
                usage(argv[0], "--rate needs a number");
            }
            if (options.rate <= 0)
                usage(argv[0], "--rate must be positive");
        } else if (arg == "--mix") {
            const std::string spec = next();
            std::stringstream stream(spec);
            std::string cell;
            std::size_t slot = 0;
            while (std::getline(stream, cell, ':') && slot < 5)
                options.mix[slot++] = static_cast<std::uint32_t>(
                    parseCount(argv[0], arg, cell));
            std::uint32_t total = 0;
            for (const std::uint32_t weight : options.mix)
                total += weight;
            if (slot != 5 || total == 0)
                usage(argv[0],
                      "--mix wants five ':'-separated weights with a "
                      "positive sum, got '" +
                          spec + "'");
        } else if (arg == "--max-live") {
            options.maxLive = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
            if (options.maxLive == 0)
                usage(argv[0], "--max-live must be positive");
        } else if (arg == "--pools") {
            options.pools = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
        } else if (arg == "--pool-skew") {
            const std::string skew = next();
            if (skew == "uniform")
                options.zipfSkew = false;
            else if (skew == "zipf")
                options.zipfSkew = true;
            else
                usage(argv[0],
                      "--pool-skew wants uniform or zipf, got '" +
                          skew + "'");
        } else if (arg == "--preload") {
            options.preload = parseCount(argv[0], arg, next());
        } else if (arg == "--expect-failover") {
            options.expectFailover = true;
        } else if (arg == "--failover-to") {
            options.failoverTo = next();
            options.expectFailover = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    if (options.connect.empty())
        usage(argv[0], "--connect is required");
    if (options.expectFailover && options.openLoop)
        usage(argv[0],
              "--expect-failover supports closed loop only (open-"
              "loop pacing across an outage measures the schedule, "
              "not the server)");
    return options;
}

/** Blocking TCP connect to "addr:port". */
int
connectTo(const std::string &spec)
{
    const std::size_t colon = spec.rfind(':');
    REF_REQUIRE(colon != std::string::npos && colon > 0,
                "--connect wants addr:port, got '" << spec << "'");
    const std::string host = spec.substr(0, colon);
    const int port = std::stoi(spec.substr(colon + 1));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    REF_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) ==
                    1,
                "--connect wants a numeric IPv4 address, got '"
                    << host << "'");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    REF_REQUIRE(fd >= 0, "socket: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    REF_REQUIRE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                "connect " << spec << ": " << std::strerror(errno));
    return fd;
}

void
sendAll(int fd, std::string_view bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t wrote =
            ::send(fd, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            REF_FATAL("send: " << std::strerror(errno));
        }
        sent += static_cast<std::size_t>(wrote);
    }
}

/** Buffered reply reader: one unit = one line (text) or one frame
 *  (binary). */
struct ReplyStream
{
    int fd = -1;
    std::string buffer;
    std::size_t offset = 0;  //!< Consumed prefix of buffer.

    bool fill()
    {
        if (offset > 0 && offset == buffer.size()) {
            buffer.clear();
            offset = 0;
        }
        char chunk[4096];
        for (;;) {
            const ssize_t got = ::read(fd, chunk, sizeof(chunk));
            if (got < 0 && errno == EINTR)
                continue;
            if (got <= 0)
                return false;  // EOF or error: server went away.
            buffer.append(chunk, static_cast<std::size_t>(got));
            return true;
        }
    }

    /** Consume one '\n'-terminated line (the newline discarded). */
    bool readLine(std::string &line)
    {
        for (;;) {
            const std::size_t newline = buffer.find('\n', offset);
            if (newline != std::string::npos) {
                line.assign(buffer, offset, newline - offset);
                offset = newline + 1;
                return true;
            }
            if (!fill())
                return false;
        }
    }

    /** Consume one CRC32 frame; the payload is copied out. */
    bool readFrameUnit(std::string &payload)
    {
        for (;;) {
            std::size_t at = offset;
            std::string_view view;
            const FrameStatus status = readFrame(buffer, at, view);
            if (status == FrameStatus::Ok) {
                payload.assign(view);
                offset = at;
                return true;
            }
            REF_REQUIRE(status != FrameStatus::Corrupt,
                        "corrupt reply frame from server");
            if (!fill())
                return false;
        }
    }
};

/** Deterministic per-connection command stream. */
class CommandStream
{
  public:
    CommandStream(const CliOptions &options, std::size_t conn)
        : options_(options), conn_(conn),
          rng_(options.seed * 1000003ull + conn)
    {
        std::uint32_t total = 0;
        for (const std::uint32_t weight : options.mix)
            total += weight;
        weightTotal_ = total;
        if (options.pools > 0 && options.zipfSkew) {
            // Zipf(1) CDF over p0..p<N-1>: mass(j) ∝ 1/(j+1).
            zipfCdf_.reserve(options.pools);
            double mass = 0.0;
            for (std::size_t j = 0; j < options.pools; ++j) {
                mass += 1.0 / static_cast<double>(j + 1);
                zipfCdf_.push_back(mass);
            }
            for (double &cumulative : zipfCdf_)
                cumulative /= mass;
        }
    }

    /** Untimed session prologue: idempotent POOL CREATEs. Every
     *  connection creates the same pools; the server treats a
     *  same-path same-weight re-create as OK, so racing connections
     *  converge without coordination. */
    std::vector<svc::Command> setupCommands() const
    {
        std::vector<svc::Command> setup;
        setup.reserve(options_.pools);
        for (std::size_t j = 0; j < options_.pools; ++j) {
            svc::Command create;
            create.op = svc::Command::Op::Pool;
            create.poolOp = svc::Command::PoolOp::Create;
            create.poolPath = poolName(j);
            create.poolWeight = 1.0;
            setup.push_back(std::move(create));
        }
        return setup;
    }

    /** Untimed preload: --preload ADMITs (each trailed by its POOL
     *  ASSIGN in pooled runs). The preloaded agents become the floor
     *  population — DEPART never picks them and the --max-live cap
     *  applies on top of them, so a scale run measures TICK against
     *  a stable large tree while churn plays out above it. */
    std::vector<svc::Command> preloadCommands()
    {
        std::vector<svc::Command> commands;
        commands.reserve(options_.preload * 2);
        for (std::uint64_t k = 0; k < options_.preload; ++k) {
            commands.push_back(makeAdmit());
            while (!pending_.empty()) {
                commands.push_back(std::move(pending_.front()));
                pending_.pop_front();
            }
        }
        preloadCount_ = live_.size();
        return commands;
    }

    /** Next command; all ops produce exactly one reply unit. */
    svc::Command next()
    {
        // A paired command (the POOL ASSIGN following an ADMIT)
        // drains before the mix picks again, so the assign lands
        // while its agent is certainly live.
        if (!pending_.empty()) {
            svc::Command command = std::move(pending_.front());
            pending_.pop_front();
            return command;
        }
        svc::Command command;
        std::uint32_t pick = static_cast<std::uint32_t>(
            rng_() % weightTotal_);
        std::size_t op = 0;
        while (pick >= options_.mix[op]) {
            pick -= options_.mix[op];
            ++op;
        }
        // UPDATE/DEPART/QUERY need a live agent; degrade to ADMIT
        // until one exists (deterministic: depends only on the
        // stream so far). Symmetrically, ADMIT degrades to DEPART
        // at the live-agent cap so the population — and with it the
        // epoch-solve cost every TICK pays — stays bounded. The
        // preloaded floor is exempt on both sides: DEPART only picks
        // churn agents, and the cap counts churn agents only.
        if (live_.empty() && (op == 1 || op == 4))
            op = 0;
        else if (op == 2 && live_.size() <= preloadCount_)
            op = 0;
        else if (op == 0 && live_.size() >=
                                options_.maxLive + preloadCount_)
            op = 2;
        switch (op) {
        case 0:
            return makeAdmit();
        case 1:
            command.op = svc::Command::Op::Update;
            command.name = live_[rng_() % live_.size()];
            command.elasticities = {elasticity(), elasticity()};
            break;
        case 2: {
            const std::size_t victim =
                preloadCount_ +
                rng_() % (live_.size() - preloadCount_);
            command.op = svc::Command::Op::Depart;
            command.name = live_[victim];
            live_.erase(live_.begin() +
                        static_cast<std::ptrdiff_t>(victim));
            break;
        }
        case 3:
            command.op = svc::Command::Op::Tick;
            command.tickCount = 1;
            break;
        default:
            command.op = svc::Command::Op::Query;
            command.hasName = true;
            command.name = live_[rng_() % live_.size()];
            break;
        }
        return command;
    }

    /** Live agents at end of run (preload + surviving churn). */
    std::size_t liveCount() const { return live_.size(); }

    /** The command as a text protocol line (newline included). */
    static std::string toLine(const svc::Command &command)
    {
        std::ostringstream line;
        switch (command.op) {
        case svc::Command::Op::Admit:
        case svc::Command::Op::Update:
            line << (command.op == svc::Command::Op::Admit
                         ? "ADMIT "
                         : "UPDATE ")
                 << command.name;
            for (const double e : command.elasticities)
                line << " " << e;
            break;
        case svc::Command::Op::Depart:
            line << "DEPART " << command.name;
            break;
        case svc::Command::Op::Tick:
            line << "TICK " << command.tickCount;
            break;
        case svc::Command::Op::Query:
            line << "QUERY " << command.name;
            break;
        case svc::Command::Op::Pool:
            line << "POOL ";
            if (command.poolOp == svc::Command::PoolOp::Create)
                line << "CREATE " << command.poolPath << " "
                     << command.poolWeight;
            else if (command.poolOp == svc::Command::PoolOp::Assign)
                line << "ASSIGN " << command.name << " "
                     << command.poolPath;
            else
                REF_FATAL("unsupported load-mix pool sub-op");
            break;
        default:
            REF_FATAL("unsupported load-mix op");
        }
        line << "\n";
        return line.str();
    }

  private:
    double elasticity()
    {
        // (0, 1) open interval: 0-elasticity rows are rejected.
        return (static_cast<double>(rng_() % 1000) + 1.0) / 1002.0;
    }

    static std::string poolName(std::size_t index)
    {
        return "p" + std::to_string(index);
    }

    /** Seeded pool pick: uniform, or Zipf(1) via CDF bisection. */
    std::size_t samplePool()
    {
        if (zipfCdf_.empty())
            return rng_() % options_.pools;
        const double u =
            static_cast<double>(rng_() % 1000000) / 1000000.0;
        const std::size_t index = static_cast<std::size_t>(
            std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u) -
            zipfCdf_.begin());
        return std::min(index, options_.pools - 1);
    }

    /** An ADMIT; in pooled runs its POOL ASSIGN queues behind it. */
    svc::Command makeAdmit()
    {
        svc::Command command;
        command.op = svc::Command::Op::Admit;
        command.name = "b" + std::to_string(conn_) + "_" +
                       std::to_string(admitted_++);
        command.elasticities = {elasticity(), elasticity()};
        live_.push_back(command.name);
        if (options_.pools > 0) {
            svc::Command assign;
            assign.op = svc::Command::Op::Pool;
            assign.poolOp = svc::Command::PoolOp::Assign;
            assign.name = command.name;
            assign.poolPath = poolName(samplePool());
            pending_.push_back(std::move(assign));
        }
        return command;
    }

    const CliOptions &options_;
    std::size_t conn_;
    std::mt19937_64 rng_;
    std::uint32_t weightTotal_ = 1;
    std::uint64_t admitted_ = 0;
    std::vector<std::string> live_;
    std::size_t preloadCount_ = 0;
    std::deque<svc::Command> pending_;
    std::vector<double> zipfCdf_;
};

/** One connection's measured results. */
struct ConnResult
{
    std::vector<std::uint64_t> latenciesNs;
    std::vector<std::uint64_t> tickLatenciesNs;
    std::uint64_t errors = 0;   //!< ERR replies (QUERY races etc).
    std::uint64_t stalls = 0;   //!< Open-loop pacing stalls.
    std::size_t liveAtEnd = 0;  //!< Stream's live agents after run.
    std::uint64_t failovers = 0;     //!< Server losses survived.
    std::uint64_t failoverGapNs = 0; //!< Loss to first accepted write.
    bool failed = false;        //!< Connect/IO failure.
};

/** Did this reply unit carry an ERR? (Sanity accounting only.) */
bool
replyIsError(const CliOptions &options, const std::string &unit)
{
    if (!options.binary)
        return unit.rfind("ERR", 0) == 0;
    const svc::wire::Reply reply = svc::wire::decodeReply(unit);
    return reply.status == svc::wire::ReplyStatus::Err;
}

/** Untimed prologue: pool creates plus preload admits, pipelined
 *  with a fixed window and fully drained before timing starts. Any
 *  ERR here is a configuration mistake (e.g. --pools against a flat
 *  server), not load noise — fail loudly. */
void
runSetup(const CliOptions &options, int fd, ReplyStream &replies,
         CommandStream &stream)
{
    std::vector<svc::Command> setup = stream.setupCommands();
    {
        std::vector<svc::Command> preload = stream.preloadCommands();
        setup.insert(setup.end(),
                     std::make_move_iterator(preload.begin()),
                     std::make_move_iterator(preload.end()));
    }
    constexpr std::size_t kSetupWindow = 64;
    std::string unit;
    std::size_t sent = 0;
    std::size_t done = 0;
    while (done < setup.size()) {
        while (sent < setup.size() && sent - done < kSetupWindow) {
            const std::string bytes =
                options.binary
                    ? frameRecord(
                          svc::wire::encodeCommand(setup[sent]))
                    : CommandStream::toLine(setup[sent]);
            sendAll(fd, bytes);
            ++sent;
        }
        const bool ok = options.binary ? replies.readFrameUnit(unit)
                                       : replies.readLine(unit);
        REF_REQUIRE(ok, "server closed during setup");
        if (replyIsError(options, unit)) {
            const std::string text =
                options.binary ? svc::wire::decodeReply(unit).text
                               : unit + "\n";
            REF_FATAL("setup command rejected: " << text);
        }
        ++done;
    }
}

void
runClosedLoop(const CliOptions &options, std::size_t conn,
              ConnResult &result)
{
    CommandStream stream(options, conn);
    std::string target = options.connect;
    std::string unit;
    int fd = -1;
    ReplyStream replies;

    const auto openSession = [&] {
        fd = connectTo(target);
        replies = ReplyStream{fd, {}, 0};
        if (options.binary) {
            sendAll(fd, svc::wire::helloMagic());
            REF_REQUIRE(replies.readFrameUnit(unit),
                        "no hello ack from server");
            REF_REQUIRE(svc::wire::decodeReply(unit).status ==
                            svc::wire::ReplyStatus::Hello,
                        "bad hello ack from server");
        }
    };
    openSession();
    runSetup(options, fd, replies, stream);

    result.latenciesNs.reserve(options.ops);
    std::deque<std::pair<std::uint64_t, bool>> sentAt;
    std::uint64_t sent = 0;
    std::uint64_t done = 0;

    // The server went away mid-run: reconnect to the standby and
    // keep going, once. The in-flight window died with the old
    // server (those ops never get replies); the probe loop rides
    // out the promotion gap, during which a warm standby still
    // refuses writes.
    const auto failOver = [&]() -> bool {
        if (!options.expectFailover || result.failovers > 0)
            return false;
        ++result.failovers;
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        sent -= sentAt.size();
        sentAt.clear();
        if (!options.failoverTo.empty())
            target = options.failoverTo;
        const std::uint64_t gapStart = nowNs();
        constexpr std::uint64_t kGiveUpNs = 30'000'000'000ull;
        svc::Command probe;
        probe.op = svc::Command::Op::Tick;
        probe.tickCount = 1;
        while (nowNs() - gapStart < kGiveUpNs) {
            try {
                openSession();
                sendAll(fd, options.binary
                                ? frameRecord(svc::wire::encodeCommand(
                                      probe))
                                : CommandStream::toLine(probe));
                const bool ok = options.binary
                                    ? replies.readFrameUnit(unit)
                                    : replies.readLine(unit);
                if (ok && !replyIsError(options, unit)) {
                    result.failoverGapNs = nowNs() - gapStart;
                    return true;
                }
            } catch (const std::exception &) {
                // Connect refused / reset: the standby is not
                // serving yet.
            }
            if (fd >= 0)
                ::close(fd);
            fd = -1;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    };

    while (done < options.ops) {
        try {
            while (sent < options.ops &&
                   sentAt.size() < options.window) {
                const svc::Command command = stream.next();
                const std::string bytes =
                    options.binary
                        ? frameRecord(
                              svc::wire::encodeCommand(command))
                        : CommandStream::toLine(command);
                sentAt.emplace_back(nowNs(),
                                    command.op ==
                                        svc::Command::Op::Tick);
                sendAll(fd, bytes);
                ++sent;
            }
            const bool ok = options.binary
                                ? replies.readFrameUnit(unit)
                                : replies.readLine(unit);
            if (!ok) {
                if (failOver())
                    continue;
                result.failed = true;
                break;
            }
        } catch (const std::exception &) {
            if (failOver())
                continue;
            result.failed = true;
            break;
        }
        const std::uint64_t latency = nowNs() - sentAt.front().first;
        result.latenciesNs.push_back(latency);
        if (sentAt.front().second)
            result.tickLatenciesNs.push_back(latency);
        sentAt.pop_front();
        if (replyIsError(options, unit))
            ++result.errors;
        ++done;
    }
    result.liveAtEnd = stream.liveCount();
    if (fd >= 0)
        ::close(fd);
}

void
runOpenLoop(const CliOptions &options, std::size_t conn,
            ConnResult &result)
{
    const int fd = connectTo(options.connect);
    ReplyStream replies{fd, {}, 0};
    CommandStream stream(options, conn);
    std::string unit;

    if (options.binary) {
        sendAll(fd, svc::wire::helloMagic());
        REF_REQUIRE(replies.readFrameUnit(unit),
                    "no hello ack from server");
    }
    runSetup(options, fd, replies, stream);

    constexpr std::size_t kMaxOutstanding = 4096;
    std::mutex mutex;
    std::condition_variable spaceFreed;
    std::deque<std::pair<std::uint64_t, bool>> sentAt;
    bool senderDone = false;

    const double perConnRate =
        options.rate / static_cast<double>(options.connections);
    const std::uint64_t intervalNs = static_cast<std::uint64_t>(
        1e9 / perConnRate);

    std::thread sender([&] {
        const Clock::time_point start = Clock::now();
        for (std::uint64_t k = 0; k < options.ops; ++k) {
            // Absolute schedule: no coordinated omission.
            std::this_thread::sleep_until(
                start + std::chrono::nanoseconds(k * intervalNs));
            const svc::Command command = stream.next();
            const std::string bytes =
                options.binary
                    ? frameRecord(svc::wire::encodeCommand(command))
                    : CommandStream::toLine(command);
            {
                std::unique_lock<std::mutex> lock(mutex);
                if (sentAt.size() >= kMaxOutstanding) {
                    ++result.stalls;
                    spaceFreed.wait(lock, [&] {
                        return sentAt.size() < kMaxOutstanding;
                    });
                }
                sentAt.emplace_back(nowNs(),
                                    command.op ==
                                        svc::Command::Op::Tick);
            }
            sendAll(fd, bytes);
        }
        std::lock_guard<std::mutex> lock(mutex);
        senderDone = true;
    });

    result.latenciesNs.reserve(options.ops);
    for (std::uint64_t done = 0; done < options.ops; ++done) {
        const bool ok = options.binary
                            ? replies.readFrameUnit(unit)
                            : replies.readLine(unit);
        if (!ok) {
            result.failed = true;
            break;
        }
        const std::uint64_t now = nowNs();
        {
            std::lock_guard<std::mutex> lock(mutex);
            const std::uint64_t latency =
                now - sentAt.front().first;
            result.latenciesNs.push_back(latency);
            if (sentAt.front().second)
                result.tickLatenciesNs.push_back(latency);
            sentAt.pop_front();
        }
        spaceFreed.notify_one();
        if (replyIsError(options, unit))
            ++result.errors;
    }
    sender.join();
    result.liveAtEnd = stream.liveCount();
    ::close(fd);
}

/** Nearest-rank percentile of a sorted sample. */
std::uint64_t
percentile(const std::vector<std::uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(
                                                sorted.size()))));
    return sorted[rank - 1];
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parseArgs(argc, argv);
    try {
        std::vector<ConnResult> results(options.connections);
        std::vector<std::thread> threads;
        threads.reserve(options.connections);

        const std::uint64_t startNs = nowNs();
        for (std::size_t c = 0; c < options.connections; ++c) {
            threads.emplace_back([&, c] {
                try {
                    if (options.openLoop)
                        runOpenLoop(options, c, results[c]);
                    else
                        runClosedLoop(options, c, results[c]);
                } catch (const std::exception &error) {
                    std::cerr << "connection " << c << ": "
                              << error.what() << "\n";
                    results[c].failed = true;
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        const std::uint64_t wallNs =
            std::max<std::uint64_t>(1, nowNs() - startNs);

        std::vector<std::uint64_t> latencies;
        std::vector<std::uint64_t> tickLatencies;
        std::uint64_t errors = 0;
        std::uint64_t stalls = 0;
        std::size_t agents = 0;
        std::uint64_t failovers = 0;
        std::uint64_t failoverGapNs = 0;
        bool failed = false;
        for (const ConnResult &result : results) {
            latencies.insert(latencies.end(),
                             result.latenciesNs.begin(),
                             result.latenciesNs.end());
            tickLatencies.insert(tickLatencies.end(),
                                 result.tickLatenciesNs.begin(),
                                 result.tickLatenciesNs.end());
            errors += result.errors;
            stalls += result.stalls;
            agents += result.liveAtEnd;
            failovers += result.failovers;
            failoverGapNs =
                std::max(failoverGapNs, result.failoverGapNs);
            failed |= result.failed;
        }
        std::sort(latencies.begin(), latencies.end());
        std::sort(tickLatencies.begin(), tickLatencies.end());
        REF_REQUIRE(!latencies.empty(),
                    "no replies measured — is the server up?");

        const std::uint64_t iterations = latencies.size();
        const double opsPerSec = static_cast<double>(iterations) *
                                 1e9 /
                                 static_cast<double>(wallNs);
        std::cerr << "bomb: " << options.connections
                  << " connections, " << iterations << " ops ("
                  << errors << " ERR replies), "
                  << (options.binary ? "binary" : "text") << " "
                  << (options.openLoop ? "open" : "closed")
                  << "-loop";
        if (stalls > 0)
            std::cerr << ", " << stalls << " pacing stalls";
        if (failovers > 0)
            // Machine-greppable: the failover soak parses this line
            // for its BENCH failover-time record.
            std::cerr << ", failovers=" << failovers
                      << " failover_gap_ns=" << failoverGapNs;
        std::cerr << "\n";

        std::cout << "{\"name\": \"" << options.name
                  << "\", \"wall_ns\": "
                  << static_cast<double>(wallNs) /
                         static_cast<double>(iterations)
                  << ", \"iterations\": " << iterations
                  << ", \"ops_per_sec\": " << opsPerSec
                  << ", \"p50_ns\": " << percentile(latencies, 0.50)
                  << ", \"p90_ns\": " << percentile(latencies, 0.90)
                  << ", \"p99_ns\": " << percentile(latencies, 0.99)
                  << ", \"agents\": " << agents
                  << ", \"pools\": " << options.pools
                  << ", \"tick_p50_ns\": "
                  << percentile(tickLatencies, 0.50)
                  << ", \"tick_p99_ns\": "
                  << percentile(tickLatencies, 0.99)
                  << "}\n";
        return failed ? 1 : 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
