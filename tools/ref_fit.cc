/**
 * @file
 * Command-line fitter: read a performance profile CSV (columns
 * x0,...,performance), fit a Cobb-Douglas utility by log-linear
 * least squares (paper Eq. 16), and print the elasticities and fit
 * diagnostics. With --append NAME the output row can be
 * concatenated into a ref_allocate agents file.
 *
 * With --workload NAME the profile is produced in-process on the
 * bundled simulator (the parallel sweep engine; see --jobs) instead
 * of being read from a file.
 *
 * Usage:
 *   ref_fit --profile profile.csv [--append NAME]
 *   ref_fit --workload dedup [--ops N] [--jobs N] [--append NAME]
 *   ref_profile --workload dedup | ref_fit --profile -
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/fitting.hh"
#include "core/profile_io.hh"
#include "sim/profiler.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr << "usage: " << argv0
              << " --profile FILE [--append NAME]\n"
                 "       "
              << argv0
              << " --workload NAME [--ops N] [--jobs N] "
                 "[--append NAME]\n\n"
                 "Fits a Cobb-Douglas utility to a profile CSV\n"
                 "(columns x0,...,performance), or profiles a\n"
                 "cataloged workload in-process (--workload; --jobs\n"
                 "fans the sweep over worker threads, default\n"
                 "REF_JOBS else all hardware threads). With\n"
                 "--append NAME, prints one agents-CSV row instead\n"
                 "of a report.\n";
    std::exit(2);
}

[[noreturn]] void
rejectCount(const char *argv0, const std::string &arg,
            const std::string &value)
{
    usage(argv0, arg + " needs a non-negative integer, got '" +
                     value + "'");
}

std::size_t
parseCount(const char *argv0, const std::string &arg,
           const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const auto parsed = std::stoull(value, &consumed);
        if (consumed != value.size())
            rejectCount(argv0, arg, value);
        return static_cast<std::size_t>(parsed);
    } catch (const std::logic_error &) {
        rejectCount(argv0, arg, value);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ref;

    std::string profile_path;
    std::string workload_name;
    std::string append_name;
    std::size_t ops = 80000;
    std::size_t jobs = 0;  // 0: REF_JOBS, else hardware threads.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--profile") {
            profile_path = next();
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--ops") {
            ops = parseCount(argv[0], arg, next());
        } else if (arg == "--jobs") {
            jobs = parseCount(argv[0], arg, next());
            if (jobs == 0)
                usage(argv[0], "--jobs must be positive");
        } else if (arg == "--append") {
            append_name = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    if (profile_path.empty() == workload_name.empty())
        usage(argv[0],
              "exactly one of --profile and --workload is required");

    try {
        core::PerformanceProfile profile;
        if (!workload_name.empty()) {
            const sim::Profiler profiler(
                sim::PlatformConfig::table1(), ops, {.jobs = jobs});
            profile = sim::Profiler::toPerformanceProfile(
                profiler.sweep(sim::workloadByName(workload_name)));
        } else if (profile_path == "-") {
            profile = core::readProfileCsv(std::cin);
        } else {
            std::ifstream profile_file(profile_path);
            REF_REQUIRE(profile_file.good(),
                        "cannot open '" << profile_path << "'");
            profile = core::readProfileCsv(profile_file);
        }
        const auto fit = core::fitCobbDouglas(profile);

        if (!append_name.empty()) {
            // One agents-CSV row: name,scale,alpha0,...
            std::cout << append_name << "," << fit.utility.scale();
            for (std::size_t r = 0; r < fit.utility.resources(); ++r)
                std::cout << "," << fit.utility.elasticity(r);
            std::cout << "\n";
            return 0;
        }

        std::cout << "samples:           " << profile.size() << "\n"
                  << "scale (a0):        "
                  << formatFixed(fit.utility.scale(), 5) << "\n";
        const auto rescaled = fit.utility.rescaled();
        Table table({"resource", "elasticity", "re-scaled"});
        for (std::size_t r = 0; r < fit.utility.resources(); ++r) {
            table.addRow({"x" + std::to_string(r),
                          formatFixed(fit.utility.elasticity(r), 5),
                          formatFixed(rescaled.elasticity(r), 5)});
        }
        table.print(std::cout);
        std::cout << "R^2 (log fit):     "
                  << formatFixed(fit.rSquaredLog, 4) << "\n"
                  << "R^2 (raw scale):   "
                  << formatFixed(fit.rSquaredLinear, 4) << "\n";
        if (fit.clampedElasticities > 0) {
            std::cout << "warning: " << fit.clampedElasticities
                      << " elasticity(ies) clamped to the positivity "
                         "floor\n";
        }
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
