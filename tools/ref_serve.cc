/**
 * @file
 * Online allocation server: a long-lived REF runtime driven by a
 * deterministic line protocol on stdin/stdout (svc/protocol.hh), so
 * agent churn, epoch ticks and queries are scriptable from tests and
 * shell pipelines without sockets.
 *
 * Usage:
 *   ref_serve [--capacity C0,C1] [--hysteresis H] [--assoc N]
 *             [--selfcheck] [--strict] [--echo] [--file PATH]
 *
 * Example session:
 *   printf 'ADMIT user1 0.6 0.4\nADMIT user2 0.2 0.8\nTICK\nQUERY\n' \
 *       | ref_serve --capacity 24,12
 *
 * --selfcheck verifies every epoch's incremental allocation
 * bit-for-bit against a from-scratch recompute; --strict exits
 * non-zero when any command was rejected or any epoch failed a
 * property or self check (soak harnesses run with both).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "svc/protocol.hh"
#include "util/logging.hh"

namespace {

using namespace ref;

struct CliOptions
{
    std::string capacityList = "24,12";
    std::string sessionFile;  //!< Empty: read stdin.
    double hysteresis = 0.0;
    unsigned associativity = 16;
    bool selfcheck = false;
    bool strict = false;
    bool echo = false;
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0
        << " [--capacity C0,C1] [--hysteresis H] [--assoc N]\n"
           "          [--selfcheck] [--strict] [--echo] "
           "[--file PATH]\n\n"
           "Runs the online REF allocation service over a line\n"
           "protocol on stdin (or PATH): ADMIT/UPDATE/DEPART agents,\n"
           "TICK epochs, QUERY shares, PLAN enforcement, STATS\n"
           "metrics. --selfcheck verifies each epoch's incremental\n"
           "allocation against a from-scratch recompute; --strict\n"
           "exits non-zero on any rejected command or failed check.\n";
    std::exit(2);
}

double
parseNumber(const char *argv0, const std::string &arg,
            const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        if (consumed != value.size())
            usage(argv0, arg + " needs a number, got '" + value + "'");
        return parsed;
    } catch (const std::logic_error &) {
        usage(argv0, arg + " needs a number, got '" + value + "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--capacity") {
            options.capacityList = next();
        } else if (arg == "--file") {
            options.sessionFile = next();
        } else if (arg == "--hysteresis") {
            options.hysteresis = parseNumber(argv[0], arg, next());
        } else if (arg == "--assoc") {
            options.associativity = static_cast<unsigned>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--selfcheck") {
            options.selfcheck = true;
        } else if (arg == "--strict") {
            options.strict = true;
        } else if (arg == "--echo") {
            options.echo = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    return options;
}

core::SystemCapacity
parseCapacity(const std::string &list)
{
    std::vector<double> capacities;
    std::stringstream stream(list);
    std::string cell;
    while (std::getline(stream, cell, ','))
        capacities.push_back(std::stod(cell));
    return core::SystemCapacity::fromCapacities(capacities);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parseArgs(argc, argv);
    try {
        svc::ServiceConfig config;
        config.capacity = parseCapacity(options.capacityList);
        config.epoch.hysteresis = options.hysteresis;
        config.epoch.verifyIncremental = options.selfcheck;
        config.associativity = options.associativity;
        config.buildEnforcement = config.capacity.count() == 2;
        svc::AllocationService service(config);

        svc::SessionOptions session;
        session.echo = options.echo;

        svc::SessionResult result;
        if (options.sessionFile.empty()) {
            result = svc::runSession(service, std::cin, std::cout,
                                     session);
        } else {
            std::ifstream file(options.sessionFile);
            REF_REQUIRE(file.good(), "cannot open '"
                                         << options.sessionFile
                                         << "'");
            result = svc::runSession(service, file, std::cout,
                                     session);
        }

        std::cerr << "session: " << result.commands << " commands, "
                  << result.errors << " rejected, "
                  << result.epochFailures << " epoch check failures\n";
        return options.strict && !result.clean() ? 1 : 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
