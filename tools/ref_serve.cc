/**
 * @file
 * Online allocation server: a long-lived REF runtime driven by a
 * deterministic line protocol on stdin/stdout (svc/protocol.hh), so
 * agent churn, epoch ticks and queries are scriptable from tests and
 * shell pipelines without sockets.
 *
 * Usage:
 *   ref_serve [--capacity C0,C1] [--hysteresis H] [--assoc N]
 *             [--pooled] [--pool-shards N]
 *             [--journal DIR] [--fsync-every N] [--snapshot-every N]
 *             [--fsync-policy every:N|group:BYTES,USEC]
 *             [--selfcheck] [--strict] [--echo] [--file PATH]
 *             [--metrics-out PATH] [--fairness-out PATH]
 *             [--trace-out PATH] [--trace-sample N]
 *             [--listen ADDR:PORT] [--unix PATH] [--shards N]
 *             [--max-clients N] [--idle-timeout MS]
 *             [--write-timeout MS] [--max-line-bytes N]
 *             [--follow HOST:PORT] [--promote-timeout MS]
 *             [--heartbeat-interval MS]
 *
 * Transports: with no --listen/--unix the protocol runs over
 * stdin/stdout exactly as before (stdio stays the default so every
 * script and test pipeline keeps working). --listen and/or --unix
 * switch to the poll-driven socket front-end (net/socket_server.hh):
 * many concurrent clients fan into the one service, each speaking
 * the same line protocol — or, per connection, the opt-in binary
 * framing (svc/wire.hh) negotiated by a magic hello. --shards N runs
 * N event-loop shards on SO_REUSEPORT listeners
 * (net/sharded_server.hh) so accept and IO load scale with cores.
 * The bound endpoints are announced once on stderr as a single
 * machine-parseable line:
 *
 *   LISTENING addr=ADDR:PORT unix=PATH shards=N
 *
 * (addr / unix appear only for configured endpoints; port 0 picks an
 * ephemeral port, which scripts parse from that line). SHUTDOWN
 * from any client — or SIGTERM — drains and stops the server.
 *
 * Observability: --metrics-out rewrites PATH with the Prometheus
 * exposition of the metrics registry after every TICK command (the
 * METRICS protocol command serves the same registry inline);
 * --fairness-out appends the per-epoch SI/EF-margin CSV rows as they
 * are produced; --trace-out enables span tracing and writes a Chrome
 * trace-event JSON on exit — load it at ui.perfetto.dev.
 * --trace-sample N keeps every Nth span for long soaks.
 *
 * Example session:
 *   printf 'ADMIT user1 0.6 0.4\nADMIT user2 0.2 0.8\nTICK\nQUERY\n' \
 *       | ref_serve --capacity 24,12
 *
 * --selfcheck verifies every epoch's incremental allocation
 * bit-for-bit against a from-scratch recompute; --strict exits
 * non-zero when any command was rejected or any epoch failed a
 * property or self check (soak harnesses run with both).
 *
 * --journal DIR makes every accepted command durable in a
 * CRC32-framed write-ahead log under DIR; a restarted server on the
 * same DIR recovers the registry and epoch state bit-for-bit before
 * reading its first command. SIGINT/SIGTERM flush and fsync the
 * journal, print the final STATS to stderr, and exit cleanly; the
 * SHUTDOWN protocol command does the same from the session itself.
 *
 * The REF_FAILPOINTS environment variable arms fault injection in
 * the journal IO layer (svc/failpoints.hh), e.g.
 * REF_FAILPOINTS='journal.fsync=eio@2x1' — test harnesses use this
 * to exercise degraded mode and crash recovery on a real process.
 *
 * Replication (DESIGN.md "Replication & failover"): a socket-mode
 * server is always a potential primary — any binary-protocol client
 * that sends SYNC becomes a warm-standby subscriber and receives the
 * WAL as it is written. --fsync-policy group:BYTES,USEC batches
 * journal fsyncs (group commit) while the transport's ack-after-
 * durable barrier keeps every reply and every shipped record behind
 * a completed fsync. --follow HOST:PORT starts this server as the
 * standby instead: it syncs a snapshot + WAL tail from the primary,
 * replays every record through the live service code paths
 * (read-only to clients until promoted), cross-checks its state
 * hash on every shipped TICK, and takes over — PROMOTE command or
 * --promote-timeout MS of primary silence — on a fresh journal
 * generation.
 */

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <memory>

#include "net/sharded_server.hh"
#include "obs/trace.hh"
#include "repl/follower.hh"
#include "repl/replication_hub.hh"
#include "svc/failpoints.hh"
#include "svc/protocol.hh"
#include "util/logging.hh"

namespace {

using namespace ref;

volatile std::sig_atomic_t gStopRequested = 0;

extern "C" void
handleStopSignal(int)
{
    gStopRequested = 1;
}

/**
 * Install SIGINT/SIGTERM handlers WITHOUT SA_RESTART so a blocking
 * getline on stdin fails with EINTR and the session loop exits,
 * letting main run the flush + final-STATS shutdown path.
 */
void
installSignalHandlers()
{
    struct sigaction action{};
    action.sa_handler = handleStopSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

struct CliOptions
{
    std::string capacityList = "24,12";
    std::string sessionFile;  //!< Empty: read stdin.
    std::string journalDir;   //!< Empty: memory-only.
    std::string metricsOut;   //!< Empty: no exposition file.
    std::string fairnessOut;  //!< Empty: no fairness CSV file.
    std::string traceOut;     //!< Empty: tracing stays disabled.
    std::string listenAddress;  //!< Empty: no TCP listener.
    std::string unixPath;       //!< Empty: no Unix listener.
    std::uint64_t traceSample = 1;
    std::size_t shards = 1;
    std::size_t maxClients = 64;
    std::size_t maxLineBytes = 65536;
    int idleTimeoutMs = 30000;
    int writeTimeoutMs = 10000;
    double hysteresis = 0.0;
    std::uint64_t fsyncEvery = 1;
    std::uint64_t groupBytes = 0;
    std::uint64_t groupUsec = 0;
    std::uint64_t snapshotEvery = 1024;
    std::string followAddress;  //!< Empty: not a follower.
    int promoteTimeoutMs = 0;   //!< 0: explicit PROMOTE only.
    int heartbeatIntervalMs = 1000;
    unsigned associativity = 16;
    std::size_t poolShards = 8;
    bool pooled = false;
    bool selfcheck = false;
    bool strict = false;
    bool echo = false;
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0
        << " [--capacity C0,C1] [--hysteresis H] [--assoc N]\n"
           "          [--pooled] [--pool-shards N]\n"
           "          [--journal DIR] [--fsync-every N] "
           "[--snapshot-every N]\n"
           "          [--fsync-policy every:N|group:BYTES,USEC]\n"
           "          [--follow HOST:PORT] [--promote-timeout MS]\n"
           "          [--heartbeat-interval MS]\n"
           "          [--selfcheck] [--strict] [--echo] "
           "[--file PATH]\n"
           "          [--metrics-out PATH] [--fairness-out PATH]\n"
           "          [--trace-out PATH] [--trace-sample N]\n"
           "          [--listen ADDR:PORT] [--unix PATH]\n"
           "          [--shards N] [--max-clients N]\n"
           "          [--idle-timeout MS] [--write-timeout MS]\n"
           "          [--max-line-bytes N]\n\n"
           "Runs the online REF allocation service over a line\n"
           "protocol on stdin (or PATH): ADMIT/UPDATE/DEPART agents,\n"
           "TICK epochs, QUERY shares, PLAN enforcement, STATS\n"
           "metrics, SHUTDOWN to stop. --journal DIR journals every\n"
           "accepted command to a crash-safe write-ahead log and\n"
           "recovers DIR's state on startup. --selfcheck verifies\n"
           "each epoch's incremental allocation against a\n"
           "from-scratch recompute; --strict exits non-zero on any\n"
           "rejected command or failed check. --metrics-out rewrites\n"
           "PATH with the Prometheus exposition after every TICK;\n"
           "--fairness-out appends per-epoch fairness-margin CSV\n"
           "rows; --trace-out records spans and writes Chrome\n"
           "trace-event JSON on exit (every Nth span with\n"
           "--trace-sample N). --listen/--unix serve the protocol\n"
           "over TCP / Unix-domain sockets to many concurrent\n"
           "clients instead of stdio (port 0 binds an ephemeral\n"
           "port, announced on stderr as 'LISTENING addr=...');\n"
           "--shards N serves TCP from N SO_REUSEPORT event-loop\n"
           "shards (one thread each); --max-clients caps the\n"
           "fan-in per shard, --idle-timeout/--write-timeout drop\n"
           "stuck or slow-reading peers, --max-line-bytes bounds\n"
           "one protocol line. --pooled runs the hierarchical pool\n"
           "tree (POOL CREATE/ASSIGN/QUERY; epochs stay O(changed\n"
           "paths), QUERY answers from the live tree, enforcement\n"
           "off); --pool-shards N sets its leaf-registry shards.\n"
           "--fsync-policy group:BYTES,USEC batches journal fsyncs\n"
           "(group commit): a batch commits when it reaches BYTES\n"
           "or its oldest record ages USEC microseconds, and socket\n"
           "replies still wait for durability (ack-after-durable).\n"
           "A socket-mode server ships its WAL to any binary client\n"
           "that subscribes with SYNC; --follow HOST:PORT runs this\n"
           "process as that warm standby instead (read-only until\n"
           "PROMOTE, or automatically after --promote-timeout MS of\n"
           "primary silence); --heartbeat-interval MS paces primary\n"
           "liveness frames to caught-up followers.\n";
    std::exit(2);
}

double
parseNumber(const char *argv0, const std::string &arg,
            const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        if (consumed != value.size())
            usage(argv0, arg + " needs a number, got '" + value + "'");
        return parsed;
    } catch (const std::logic_error &) {
        usage(argv0, arg + " needs a number, got '" + value + "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--capacity") {
            options.capacityList = next();
        } else if (arg == "--file") {
            options.sessionFile = next();
        } else if (arg == "--journal") {
            options.journalDir = next();
        } else if (arg == "--metrics-out") {
            options.metricsOut = next();
        } else if (arg == "--fairness-out") {
            options.fairnessOut = next();
        } else if (arg == "--trace-out") {
            options.traceOut = next();
        } else if (arg == "--listen") {
            options.listenAddress = next();
        } else if (arg == "--unix") {
            options.unixPath = next();
        } else if (arg == "--shards") {
            options.shards = static_cast<std::size_t>(
                parseNumber(argv[0], arg, next()));
            if (options.shards == 0)
                usage(argv[0], "--shards must be positive");
        } else if (arg == "--max-clients") {
            options.maxClients = static_cast<std::size_t>(
                parseNumber(argv[0], arg, next()));
            if (options.maxClients == 0)
                usage(argv[0], "--max-clients must be positive");
        } else if (arg == "--max-line-bytes") {
            options.maxLineBytes = static_cast<std::size_t>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--idle-timeout") {
            options.idleTimeoutMs = static_cast<int>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--write-timeout") {
            options.writeTimeoutMs = static_cast<int>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--trace-sample") {
            options.traceSample = static_cast<std::uint64_t>(
                parseNumber(argv[0], arg, next()));
            if (options.traceSample == 0)
                usage(argv[0], "--trace-sample must be positive");
        } else if (arg == "--fsync-every") {
            options.fsyncEvery = static_cast<std::uint64_t>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--fsync-policy") {
            const std::string value = next();
            if (value.rfind("every:", 0) == 0) {
                options.fsyncEvery = static_cast<std::uint64_t>(
                    parseNumber(argv[0], arg, value.substr(6)));
                options.groupBytes = 0;
                options.groupUsec = 0;
            } else if (value.rfind("group:", 0) == 0) {
                const std::string spec = value.substr(6);
                const std::size_t comma = spec.find(',');
                if (comma == std::string::npos)
                    usage(argv[0],
                          "--fsync-policy group wants BYTES,USEC, "
                          "got '" + value + "'");
                options.groupBytes = static_cast<std::uint64_t>(
                    parseNumber(argv[0], arg,
                                spec.substr(0, comma)));
                options.groupUsec = static_cast<std::uint64_t>(
                    parseNumber(argv[0], arg,
                                spec.substr(comma + 1)));
                if (options.groupBytes == 0 &&
                    options.groupUsec == 0)
                    usage(argv[0],
                          "--fsync-policy group needs BYTES or "
                          "USEC > 0");
            } else {
                usage(argv[0],
                      "--fsync-policy wants every:N or "
                      "group:BYTES,USEC, got '" + value + "'");
            }
        } else if (arg == "--follow") {
            options.followAddress = next();
        } else if (arg == "--promote-timeout") {
            options.promoteTimeoutMs = static_cast<int>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--heartbeat-interval") {
            options.heartbeatIntervalMs = static_cast<int>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--snapshot-every") {
            options.snapshotEvery = static_cast<std::uint64_t>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--hysteresis") {
            options.hysteresis = parseNumber(argv[0], arg, next());
        } else if (arg == "--assoc") {
            options.associativity = static_cast<unsigned>(
                parseNumber(argv[0], arg, next()));
        } else if (arg == "--pooled") {
            options.pooled = true;
        } else if (arg == "--pool-shards") {
            options.poolShards = static_cast<std::size_t>(
                parseNumber(argv[0], arg, next()));
            if (options.poolShards == 0)
                usage(argv[0], "--pool-shards must be positive");
        } else if (arg == "--selfcheck") {
            options.selfcheck = true;
        } else if (arg == "--strict") {
            options.strict = true;
        } else if (arg == "--echo") {
            options.echo = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    return options;
}

core::SystemCapacity
parseCapacity(const std::string &list)
{
    std::vector<double> capacities;
    std::stringstream stream(list);
    std::string cell;
    while (std::getline(stream, cell, ','))
        capacities.push_back(std::stod(cell));
    return core::SystemCapacity::fromCapacities(capacities);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parseArgs(argc, argv);
    try {
        if (const char *spec = std::getenv("REF_FAILPOINTS"))
            svc::Failpoints::instance().armFromSpec(spec);

        svc::ServiceConfig config;
        config.capacity = parseCapacity(options.capacityList);
        config.epoch.hysteresis = options.hysteresis;
        config.epoch.verifyIncremental = options.selfcheck;
        config.associativity = options.associativity;
        config.buildEnforcement =
            !options.pooled && config.capacity.count() == 2;
        config.pooled = options.pooled;
        config.poolShards = options.poolShards;
        config.journal.directory = options.journalDir;
        config.journal.fsyncEvery = options.fsyncEvery;
        config.journal.groupBytes = options.groupBytes;
        config.journal.groupUsec = options.groupUsec;
        config.journal.snapshotEvery = options.snapshotEvery;
        svc::AllocationService service(config);

        if (config.journal.enabled()) {
            const svc::RecoveryInfo &recovery = service.recovery();
            std::cerr << "recovery: outcome="
                      << svc::toString(recovery.outcome)
                      << " generation=" << recovery.generation
                      << " replayed=" << recovery.replayedRecords
                      << " truncated_bytes="
                      << recovery.truncatedBytes
                      << " agents=" << service.liveAgents() << "\n";
        }

        installSignalHandlers();

        if (!options.traceOut.empty())
            obs::Tracer::global().enable(
                obs::Tracer::kDefaultCapacity, options.traceSample);

        svc::SessionOptions session;
        session.echo = options.echo;
        session.stopFlag = &gStopRequested;
        session.metricsOutPath = options.metricsOut;
        session.fairnessOutPath = options.fairnessOut;

        const bool socketMode = !options.listenAddress.empty() ||
                                !options.unixPath.empty();
        if (socketMode && !options.sessionFile.empty())
            usage(argv[0],
                  "--file is a stdio-mode flag; use --listen/--unix "
                  "without it");

        // Warm-standby mode: replay the primary's WAL in the
        // background; the session gate keeps clients read-only
        // until PROMOTE (or the primary-silence timeout) flips us.
        std::unique_ptr<repl::FollowerClient> follower;
        if (!options.followAddress.empty()) {
            repl::FollowerClient::Options followOptions;
            followOptions.address = options.followAddress;
            followOptions.promoteTimeoutMs =
                options.promoteTimeoutMs;
            follower = std::make_unique<repl::FollowerClient>(
                service, followOptions);
            session.follower = follower.get();
            follower->start();
            std::cerr << "FOLLOWING addr=" << options.followAddress
                      << " promote_timeout_ms="
                      << options.promoteTimeoutMs << "\n";
        }

        // Any socket-mode server is a potential replication
        // primary: the hub turns every journaled record into a
        // shippable stream frame, and binary clients subscribe
        // with SYNC. (A follower keeps a hub too — promoting it
        // makes it a primary its old peers can re-follow.)
        std::unique_ptr<repl::ReplicationHub> hub;
        if (socketMode)
            hub = std::make_unique<repl::ReplicationHub>();

        svc::SessionResult result;
        if (socketMode) {
            service.setReplicationSink(hub.get());
            net::ServerOptions server;
            server.listenAddress = options.listenAddress;
            server.unixPath = options.unixPath;
            server.maxClients = options.maxClients;
            server.maxLineBytes = options.maxLineBytes;
            server.idleTimeoutMs = options.idleTimeoutMs;
            server.writeTimeoutMs = options.writeTimeoutMs;
            server.session = session;
            server.replicationHub = hub.get();
            server.heartbeatIntervalMs =
                options.heartbeatIntervalMs;
            net::ShardedServer front(service, server,
                                     options.shards);
            front.start();
            // One machine-parseable announcement line; scripts and
            // tests key off the "LISTENING " prefix to learn the
            // ephemeral port.
            std::cerr << "LISTENING";
            if (!options.listenAddress.empty()) {
                const std::string &spec = options.listenAddress;
                std::cerr << " addr="
                          << spec.substr(0, spec.rfind(':')) << ":"
                          << front.tcpPort();
            }
            if (!options.unixPath.empty())
                std::cerr << " unix=" << options.unixPath;
            std::cerr << " shards=" << front.shardCount() << "\n";
            const net::ShardedStats sharded = front.run();
            const net::ServerStats &stats = sharded.total;
            result = stats.protocol;
            result.shutdown = stats.shutdown;
            std::cerr << "server: " << stats.accepted
                      << " accepted (" << stats.binaryConnections
                      << " binary), " << stats.dropped
                      << " dropped (" << stats.idleTimeouts
                      << " idle, " << stats.writeTimeouts
                      << " write-timeout, " << stats.acceptRejects
                      << " full), " << stats.bytesIn << " bytes in, "
                      << stats.bytesOut << " bytes out, "
                      << stats.overlongLines << " overlong lines, "
                      << stats.frames << " frames ("
                      << stats.badFrames << " bad), "
                      << stats.replicas << " replicas\n";
            service.setReplicationSink(nullptr);
        } else if (options.sessionFile.empty()) {
            result = svc::runSession(service, std::cin, std::cout,
                                     session);
        } else {
            std::ifstream file(options.sessionFile);
            REF_REQUIRE(file.good(), "cannot open '"
                                         << options.sessionFile
                                         << "'");
            result = svc::runSession(service, file, std::cout,
                                     session);
        }

        if (follower)
            follower->stop();

        // S2 drain order: flush any in-flight group-commit batch
        // BEFORE the final STATS print, so the journal counters in
        // the log describe a fully durable WAL (journal_pending=0).
        service.syncJournal();

        if (!options.traceOut.empty()) {
            obs::Tracer &tracer = obs::Tracer::global();
            tracer.disable();
            std::ofstream trace(options.traceOut);
            if (trace.good()) {
                tracer.writeChromeTrace(trace);
                const obs::TracerStats stats = tracer.stats();
                std::cerr << "trace: " << stats.recorded
                          << " spans -> " << options.traceOut
                          << " (sample_every=" << stats.sampleEvery
                          << " overwritten=" << stats.overwritten
                          << ")\n";
            } else {
                REF_WARN("cannot write trace to '"
                         << options.traceOut << "'");
            }
        }

        std::cerr << "session: " << result.commands << " commands, "
                  << result.errors << " rejected, "
                  << result.epochFailures << " epoch check failures";
        if (result.shutdown || gStopRequested)
            std::cerr << " (shutdown)";
        std::cerr << "\n";
        if (gStopRequested) {
            // Signal path: the operator can't send STATS any more,
            // so print the final counters where logs will have them.
            std::cerr << "final stats:\n";
            svc::printMetrics(std::cerr, service.metrics());
        }
        return options.strict && !result.clean() ? 1 : 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
