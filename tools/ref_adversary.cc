/**
 * @file
 * Strategic-client fleet driver: quantify strategy-proofness at
 * finite N against a live ref_serve.
 *
 * For each population size N in --sweep (or the single --agents), a
 * fleet (src/adv/fleet.hh) admits N seeded agents, labels the first
 * --liars as cohort "liar", plays best-response re-report rounds to
 * a fix-point, and emits one BENCH-schema JSON record per step on
 * stdout:
 *
 *   {"name": "strategy/n<N>_k<K>", "wall_ns": <ticks>,
 *    "iterations": <commands>, "agents": N, "liars": K,
 *    "rounds": ..., "converged": 0|1, "gain_ratio": ...,
 *    "mean_gain_ratio": ..., "report_deviation": ...,
 *    "utilization_loss": ..., "honest_si_margin": ...,
 *    "honest_ef_margin": ..., "liar_si_margin": ...}
 *
 * Determinism contract: stdout is a pure function of the arguments.
 * wall_ns is NOT wall-clock — it is the deterministic epoch count
 * the dynamics consumed (baseline tick + one per re-report round),
 * so the regression gate tracks convergence cost, and the same seed
 * produces byte-identical stdout across text vs binary framing and
 * across server shard counts (scripts/adversary_determinism.sh
 * asserts exactly that). Real timings go to stderr only.
 *
 * The fleet departs its agents after each step, so one long-lived
 * server hosts the whole sweep; only the epoch counter carries over,
 * and allocations depend only on the live population.
 *
 * Usage:
 *   ref_adversary --connect ADDR:PORT [--binary] [--agents N]
 *                 [--liars K] [--epochs E] [--seed S] [--tol T]
 *                 [--capacity C0,C1,...] [--sweep N1,N2,...]
 *                 [--tag STR]
 */

#include <charconv>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adv/fleet.hh"
#include "util/logging.hh"

namespace {

using namespace ref;

struct CliOptions
{
    std::string connect;
    bool binary = false;
    std::size_t agents = 8;
    std::size_t liars = 1;
    std::uint64_t epochs = 16;
    std::uint64_t seed = 42;
    double tolerance = 1e-9;
    linalg::Vector capacities = {24.0, 12.0};
    std::vector<std::size_t> sweep;  //!< Empty: single --agents run.
    std::string tag;  //!< Optional record-name suffix ("_<tag>").
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0
        << " --connect ADDR:PORT [--binary] [--agents N]\n"
           "          [--liars K] [--epochs E] [--seed S] [--tol T]\n"
           "          [--capacity C0,C1,...] [--sweep N1,N2,...]\n"
           "          [--tag STR]\n\n"
           "Adversarial fleet for ref_serve: N seeded agents, the\n"
           "first K strategic (client-side best response + UPDATE\n"
           "re-reports each epoch until fix-point, at most E rounds),\n"
           "the rest honest. Emits one BENCH-schema JSON record per\n"
           "population size on stdout with the liars' gain-from-lying\n"
           "ratio, the utilization loss vs all-truthful, and the\n"
           "honest cohort's SI/EF margins from the labelled fairness\n"
           "telemetry. stdout is deterministic in the arguments:\n"
           "wall_ns counts epochs consumed, never wall-clock.\n";
    std::exit(2);
}

std::uint64_t
parseCount(const char *argv0, const std::string &arg,
           const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const long long parsed = std::stoll(value, &consumed);
        if (consumed != value.size() || parsed < 0)
            usage(argv0, arg + " needs a non-negative integer, got '"
                             + value + "'");
        return static_cast<std::uint64_t>(parsed);
    } catch (const std::logic_error &) {
        usage(argv0, arg + " needs a non-negative integer, got '" +
                         value + "'");
    }
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--connect") {
            options.connect = next();
        } else if (arg == "--binary") {
            options.binary = true;
        } else if (arg == "--agents") {
            options.agents = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
        } else if (arg == "--liars") {
            options.liars = static_cast<std::size_t>(
                parseCount(argv[0], arg, next()));
        } else if (arg == "--epochs") {
            options.epochs = parseCount(argv[0], arg, next());
            if (options.epochs == 0)
                usage(argv[0], "--epochs must be positive");
        } else if (arg == "--seed") {
            options.seed = parseCount(argv[0], arg, next());
        } else if (arg == "--tol") {
            try {
                options.tolerance = std::stod(next());
            } catch (const std::logic_error &) {
                usage(argv[0], "--tol needs a number");
            }
            if (options.tolerance <= 0)
                usage(argv[0], "--tol must be positive");
        } else if (arg == "--capacity") {
            options.capacities.clear();
            std::stringstream stream(next());
            std::string cell;
            while (std::getline(stream, cell, ',')) {
                try {
                    options.capacities.push_back(std::stod(cell));
                } catch (const std::logic_error &) {
                    usage(argv[0],
                          "--capacity wants comma-separated numbers");
                }
            }
            if (options.capacities.empty())
                usage(argv[0],
                      "--capacity wants comma-separated numbers");
        } else if (arg == "--sweep") {
            std::stringstream stream(next());
            std::string cell;
            while (std::getline(stream, cell, ','))
                options.sweep.push_back(static_cast<std::size_t>(
                    parseCount(argv[0], arg, cell)));
            if (options.sweep.empty())
                usage(argv[0], "--sweep wants comma-separated sizes");
        } else if (arg == "--tag") {
            options.tag = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    if (options.connect.empty())
        usage(argv[0], "--connect is required");
    return options;
}

/** Shortest decimal that round-trips the exact double: the record
 *  is byte-stable because the measurement is. */
std::string
formatDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    REF_ASSERT(ec == std::errc(), "to_chars failed");
    return std::string(buffer, end);
}

void
printRecord(const CliOptions &cli, const adv::FleetReport &report)
{
    std::ostringstream record;
    record << "{\"name\": \"strategy/n" << report.agents << "_k"
           << report.liars << (cli.tag.empty() ? "" : "_" + cli.tag)
           << "\""
           // Deterministic "cost": epochs consumed (baseline tick +
           // one per round), never wall-clock — see file comment.
           << ", \"wall_ns\": " << (report.rounds + 1)
           << ", \"iterations\": " << report.commands
           << ", \"agents\": " << report.agents
           << ", \"liars\": " << report.liars
           << ", \"rounds\": " << report.rounds
           << ", \"converged\": " << (report.converged ? 1 : 0)
           << ", \"gain_ratio\": " << formatDouble(report.gainRatio)
           << ", \"mean_gain_ratio\": "
           << formatDouble(report.meanGainRatio)
           << ", \"report_deviation\": "
           << formatDouble(report.reportDeviation)
           << ", \"utilization_loss\": "
           << formatDouble(report.utilizationLoss)
           << ", \"honest_si_margin\": "
           << formatDouble(report.honestSiMargin)
           << ", \"honest_ef_margin\": "
           << formatDouble(report.honestEfMargin)
           << ", \"liar_si_margin\": "
           << formatDouble(report.liarSiMargin) << "}";
    std::cout << record.str() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);
    std::vector<std::size_t> sizes = cli.sweep;
    if (sizes.empty())
        sizes.push_back(cli.agents);

    try {
        for (const std::size_t population : sizes) {
            adv::FleetOptions options;
            options.connect = cli.connect;
            options.binary = cli.binary;
            options.agents = population;
            options.liars = std::min(cli.liars, population);
            options.maxRounds = cli.epochs;
            options.seed = cli.seed;
            options.tolerance = cli.tolerance;
            options.capacity =
                core::SystemCapacity::fromCapacities(cli.capacities);

            const auto start = std::chrono::steady_clock::now();
            const adv::FleetReport report = adv::runFleet(options);
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start);

            printRecord(cli, report);
            std::cerr << "ref_adversary: n=" << report.agents
                      << " k=" << report.liars
                      << " rounds=" << report.rounds
                      << (report.converged ? " (fix-point)"
                                           : " (round cap)")
                      << " gain=" << report.gainRatio
                      << " honest_si=" << report.honestSiMargin
                      << " in " << elapsed.count() << " ms\n";
        }
    } catch (const FatalError &error) {
        std::cerr << "ref_adversary: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
