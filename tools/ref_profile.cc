/**
 * @file
 * Command-line profiler: sweep a cataloged workload across the
 * Table 1 cache/bandwidth grid on the bundled simulator and emit the
 * performance profile as CSV (columns x0 = bandwidth GB/s,
 * x1 = cache MB, performance = IPC). Composes with ref_fit:
 *
 *   ref_profile --workload dedup | ref_fit --profile -
 *
 * Usage:
 *   ref_profile --workload NAME [--ops N] [--jobs N]
 *               [--cache-dir DIR] [--list] [--quiet]
 *               [--trace-out PATH]
 *
 * Status chatter (the sweep-cache summary) goes through the library
 * logger at inform level; --quiet drops to warnings only.
 * --trace-out records a span per simulated sweep cell and writes
 * Chrome trace-event JSON on exit (load it at ui.perfetto.dev).
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/profile_io.hh"
#include "obs/trace.hh"
#include "sim/profiler.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr << "usage: " << argv0
              << " --workload NAME [--ops N] [--jobs N]"
                 " [--cache-dir DIR] [--list] [--quiet]"
                 " [--trace-out PATH]\n\n"
                 "Profiles a cataloged synthetic workload over the "
                 "Table 1 sweep\nand writes the profile CSV to "
                 "stdout. --list prints the catalog.\n\n"
                 "--jobs N fans the sweep out over N worker threads "
                 "(default:\nREF_JOBS, else all hardware threads); "
                 "results are bit-identical\nfor every N.\n\n"
                 "--cache-dir DIR persists each simulated cell as a "
                 "CRC32-framed\nrecord so later runs (any process) "
                 "reuse it; corrupt entries are\nignored and "
                 "recomputed.\n\n"
                 "--quiet silences the sweep-cache status line "
                 "(warnings still\nprint). --trace-out PATH records "
                 "per-cell spans and writes\nChrome trace-event JSON "
                 "to PATH.\n";
    std::exit(2);
}

[[noreturn]] void
rejectCount(const char *argv0, const std::string &arg,
            const std::string &value)
{
    usage(argv0, arg + " needs a non-negative integer, got '" +
                     value + "'");
}

std::size_t
parseCount(const char *argv0, const std::string &arg,
           const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const auto parsed = std::stoull(value, &consumed);
        if (consumed != value.size())
            rejectCount(argv0, arg, value);
        return static_cast<std::size_t>(parsed);
    } catch (const std::logic_error &) {
        rejectCount(argv0, arg, value);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ref;

    std::string workload_name;
    std::size_t ops = 80000;
    std::size_t jobs = 0;  // 0: REF_JOBS, else hardware threads.
    std::string cache_dir;
    std::string trace_out;
    bool list = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--ops") {
            ops = parseCount(argv[0], arg, next());
        } else if (arg == "--jobs") {
            jobs = parseCount(argv[0], arg, next());
            if (jobs == 0)
                usage(argv[0], "--jobs must be positive");
        } else if (arg == "--cache-dir") {
            cache_dir = next();
            if (cache_dir.empty())
                usage(argv[0], "--cache-dir needs a directory");
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }

    // Status chatter is inform-level; a CLI wants it by default and
    // silent with --quiet (warnings always print).
    setLogLevel(quiet ? LogLevel::Warn : LogLevel::Inform);

    try {
        if (list) {
            for (const auto &workload : sim::allWorkloads()) {
                std::cout << workload.name << " ("
                          << workload.expectedClass << ")\n";
            }
            return 0;
        }
        if (workload_name.empty())
            usage(argv[0], "--workload is required");

        const auto &workload = sim::workloadByName(workload_name);
        if (!trace_out.empty())
            obs::Tracer::global().enable();
        const sim::Profiler profiler(
            sim::PlatformConfig::table1(), ops,
            {.jobs = jobs, .cacheDir = cache_dir});
        const auto profile = sim::Profiler::toPerformanceProfile(
            profiler.sweep(workload));
        core::writeProfileCsv(std::cout, profile);
        const auto stats = profiler.runner().cacheStats();
        {
            detail::MessageBuilder message;
            message << "sweep cache: hits=" << stats.hits
                    << " misses=" << stats.misses
                    << " evictions=" << stats.evictions;
            if (!cache_dir.empty()) {
                message << " disk_hits=" << stats.diskHits
                        << " disk_writes=" << stats.diskWrites
                        << " disk_bad=" << stats.diskBadEntries;
            }
            REF_INFORM(message.str());
        }
        if (!trace_out.empty()) {
            obs::Tracer &tracer = obs::Tracer::global();
            tracer.disable();
            std::ofstream trace(trace_out);
            if (trace.good()) {
                tracer.writeChromeTrace(trace);
                REF_INFORM("trace: " << tracer.stats().recorded
                                     << " spans -> " << trace_out);
            } else {
                REF_WARN("cannot write trace to '" << trace_out
                                                   << "'");
            }
        }
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
