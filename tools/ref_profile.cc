/**
 * @file
 * Command-line profiler: sweep a cataloged workload across the
 * Table 1 cache/bandwidth grid on the bundled simulator and emit the
 * performance profile as CSV (columns x0 = bandwidth GB/s,
 * x1 = cache MB, performance = IPC). Composes with ref_fit:
 *
 *   ref_profile --workload dedup | ref_fit --profile -
 *
 * Usage:
 *   ref_profile --workload NAME [--ops N] [--list]
 */

#include <iostream>
#include <string>

#include "core/profile_io.hh"
#include "sim/profiler.hh"
#include "util/logging.hh"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr << "usage: " << argv0
              << " --workload NAME [--ops N] [--list]\n\n"
                 "Profiles a cataloged synthetic workload over the "
                 "Table 1 sweep\nand writes the profile CSV to "
                 "stdout. --list prints the catalog.\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ref;

    std::string workload_name;
    std::size_t ops = 80000;
    bool list = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--ops") {
            ops = static_cast<std::size_t>(std::stoull(next()));
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }

    try {
        if (list) {
            for (const auto &workload : sim::allWorkloads()) {
                std::cout << workload.name << " ("
                          << workload.expectedClass << ")\n";
            }
            return 0;
        }
        if (workload_name.empty())
            usage(argv[0], "--workload is required");

        const auto &workload = sim::workloadByName(workload_name);
        const sim::Profiler profiler(sim::PlatformConfig::table1(),
                                     ops);
        const auto profile = sim::Profiler::toPerformanceProfile(
            profiler.sweep(workload));
        core::writeProfileCsv(std::cout, profile);
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
