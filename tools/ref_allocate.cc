/**
 * @file
 * Command-line allocator: read agents (fitted Cobb-Douglas
 * utilities) from a CSV, allocate a set of resource capacities with
 * a chosen mechanism, print the allocation and its fairness report.
 *
 * Usage:
 *   ref_allocate --agents agents.csv --capacity 24,12
 *                [--mechanism ref|equal-slowdown|max-welfare|
 *                             max-welfare-fair|utilitarian]
 *                [--csv]
 *
 * Agents CSV format (see core/profile_io.hh):
 *   name,scale,alpha0,alpha1,...
 *   user1,1.0,0.6,0.4
 *   user2,1.0,0.2,0.8
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/fairness.hh"
#include "core/profile_io.hh"
#include "core/proportional_elasticity.hh"
#include "core/utilitarian.hh"
#include "core/welfare.hh"
#include "core/welfare_mechanisms.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

using namespace ref;

struct CliOptions
{
    std::string agentsPath;
    std::string capacityList;
    std::string mechanism = "ref";
    bool csvOutput = false;
};

[[noreturn]] void
usage(const char *argv0, const std::string &error = "")
{
    if (!error.empty())
        std::cerr << "error: " << error << "\n\n";
    std::cerr
        << "usage: " << argv0
        << " --agents FILE --capacity C0,C1,...\n"
           "          [--mechanism ref|equal-slowdown|max-welfare|"
           "max-welfare-fair|utilitarian]\n"
           "          [--csv]\n\n"
           "Reads agents (name,scale,alpha0,alpha1,...) from FILE,\n"
           "allocates the given capacities, prints the allocation\n"
           "and its SI/EF/PE report.\n";
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--agents") {
            options.agentsPath = next();
        } else if (arg == "--capacity") {
            options.capacityList = next();
        } else if (arg == "--mechanism") {
            options.mechanism = next();
        } else if (arg == "--csv") {
            options.csvOutput = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            usage(argv[0], "unknown argument " + arg);
        }
    }
    if (options.agentsPath.empty())
        usage(argv[0], "--agents is required");
    if (options.capacityList.empty())
        usage(argv[0], "--capacity is required");
    return options;
}

core::SystemCapacity
parseCapacity(const std::string &list)
{
    std::vector<double> capacities;
    std::stringstream stream(list);
    std::string cell;
    while (std::getline(stream, cell, ','))
        capacities.push_back(std::stod(cell));
    return core::SystemCapacity::fromCapacities(capacities);
}

std::unique_ptr<core::AllocationMechanism>
makeMechanism(const std::string &name)
{
    using namespace core;
    if (name == "ref")
        return std::make_unique<ProportionalElasticityMechanism>();
    if (name == "equal-slowdown")
        return std::make_unique<WelfareMechanism>(makeEqualSlowdown());
    if (name == "max-welfare")
        return std::make_unique<WelfareMechanism>(
            makeMaxWelfareUnfair());
    if (name == "max-welfare-fair")
        return std::make_unique<WelfareMechanism>(makeMaxWelfareFair());
    if (name == "utilitarian")
        return std::make_unique<UtilitarianMechanism>();
    REF_FATAL("unknown mechanism '" << name << "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parseArgs(argc, argv);
    try {
        std::ifstream agents_file(options.agentsPath);
        REF_REQUIRE(agents_file.good(),
                    "cannot open '" << options.agentsPath << "'");
        const auto agents = core::readAgentsCsv(agents_file);
        const auto capacity = parseCapacity(options.capacityList);
        const auto mechanism = makeMechanism(options.mechanism);

        const auto allocation =
            mechanism->allocate(agents, capacity);
        const auto report = core::checkFairness(
            agents, capacity, allocation, {1e-4, 1e-2, 1e-6});

        if (options.csvOutput) {
            std::vector<std::string> header{"name"};
            for (std::size_t r = 0; r < capacity.count(); ++r)
                header.push_back(capacity.resource(r).name);
            header.push_back("weighted_utility");
            CsvWriter csv(std::cout, header);
            for (std::size_t i = 0; i < agents.size(); ++i) {
                std::vector<std::string> row{agents[i].name()};
                for (std::size_t r = 0; r < capacity.count(); ++r)
                    row.push_back(
                        std::to_string(allocation.at(i, r)));
                row.push_back(std::to_string(core::weightedUtility(
                    agents[i], allocation.agentShare(i), capacity)));
                csv.writeRow(row);
            }
        } else {
            std::cout << "mechanism: " << mechanism->name() << "\n\n";
            std::vector<std::string> header{"agent"};
            for (std::size_t r = 0; r < capacity.count(); ++r)
                header.push_back(capacity.resource(r).name);
            header.push_back("U_i");
            Table table(header);
            for (std::size_t i = 0; i < agents.size(); ++i) {
                std::vector<std::string> row{agents[i].name()};
                for (std::size_t r = 0; r < capacity.count(); ++r)
                    row.push_back(
                        formatFixed(allocation.at(i, r), 4));
                row.push_back(formatFixed(
                    core::weightedUtility(agents[i],
                                          allocation.agentShare(i),
                                          capacity),
                    4));
                table.addRow(row);
            }
            table.print(std::cout);
            std::cout << "\nSI: "
                      << (report.sharingIncentives.satisfied
                              ? "satisfied" : "VIOLATED")
                      << "  EF: "
                      << (report.envyFreeness.satisfied ? "satisfied"
                                                        : "VIOLATED")
                      << "  PE: "
                      << (report.paretoEfficiency.satisfied
                              ? "satisfied" : "violated")
                      << "\nweighted system throughput: "
                      << formatFixed(
                             core::weightedSystemThroughput(
                                 agents, allocation, capacity),
                             4)
                      << "\n";
        }
        return report.allHold() ? 0 : 1;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
